"""Shared experiment infrastructure: scale, workload, result container.

Every experiment runs the Table 1 workload at multiprogramming level 8
unless the experiment itself sweeps that value (the paper's choice,
Section 3).  The paper simulates ~2.5 billion references with a
500,000-cycle time slice; the default reproduction scale is a few million
references with the slice scaled down proportionally (see
:class:`ExperimentScale.time_slice`) so a full figure regenerates in
seconds-to-minutes — raise ``instructions_per_benchmark`` and ``time_slice``
together to close the gap.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import SystemConfig
from repro.core.stats import SimStats
from repro.analysis.sweep import run_point
from repro.params import DEFAULT_MULTIPROGRAMMING_LEVEL
from repro.trace.benchmarks import default_suite, replicate_suite
from repro.trace.synthetic import BenchmarkProfile


@dataclass(frozen=True)
class ExperimentScale:
    """How big a reproduction run is.

    Attributes:
        instructions_per_benchmark: synthetic trace length per process.
        level: multiprogramming level (processes running concurrently).
        time_slice: scheduler slice in cycles.
        warmup_fraction: leading fraction of the run excluded from statistics
            (cache state is kept; only counters reset).  The paper's traces
            are long enough not to need this.
    """

    instructions_per_benchmark: int = 400_000
    level: int = DEFAULT_MULTIPROGRAMMING_LEVEL
    #: The paper's slice is 500,000 cycles against ~250M-cycle benchmarks —
    #: roughly 500 slices per process.  Reproduction traces are ~500x
    #: shorter, so the default slice is scaled down (keeping it far above
    #: the largest miss penalty) to preserve the multiprogrammed
    #: interleaving regime; experiments that sweep the slice (Fig. 3) pass
    #: their own values.
    time_slice: int = 100_000
    warmup_fraction: float = 0.4

    def warmup_instructions(self, level: Optional[int] = None) -> int:
        """Total warmup instructions for a given level."""
        n = level if level is not None else self.level
        return int(self.instructions_per_benchmark * n * self.warmup_fraction)


#: Scale used by the pytest-benchmark harness: small enough for CI.
BENCH_SCALE = ExperimentScale(instructions_per_benchmark=120_000, level=8,
                              time_slice=30_000)

#: Default scale for interactive / EXPERIMENTS.md runs.
DEFAULT_SCALE = ExperimentScale()


def workload(scale: ExperimentScale,
             level: Optional[int] = None) -> List[BenchmarkProfile]:
    """The benchmark mix for a scale: exactly ``level`` processes.

    The suite is truncated (or seed-replicated, for levels above the suite
    size) to the multiprogramming level so that every process is resident
    from the start of the run; late-admitted cold processes would otherwise
    dominate short runs with compulsory misses.
    """
    n = level if level is not None else scale.level
    suite = default_suite(scale.instructions_per_benchmark)
    if n <= len(suite):
        return suite[:n]
    return replicate_suite(suite, n)


def run_system(config: SystemConfig, scale: ExperimentScale,
               level: Optional[int] = None,
               time_slice: Optional[int] = None,
               energy: Optional[str] = None) -> SimStats:
    """Run one configuration at a scale; returns its statistics.

    ``energy`` selects an energy technology
    (:data:`repro.energy.ENERGY_TECHNOLOGIES`) for per-event accounting;
    ``None`` defers to the ambient farm session (usually disabled).
    """
    n = level if level is not None else scale.level
    return run_point(
        config,
        workload(scale, n),
        time_slice=time_slice if time_slice is not None else scale.time_slice,
        level=n,
        warmup_instructions=scale.warmup_instructions(n),
        energy=energy,
    )


@dataclass
class ExperimentResult:
    """The reproduced artifact for one table or figure."""

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence]
    notes: str = ""
    extra_text: str = ""
    #: Arbitrary scalar findings (crossovers, improvements) for tests/docs.
    findings: Dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        """Human-readable report."""
        from repro.analysis.tables import format_table

        parts = [f"== {self.experiment_id}: {self.title} =="]
        if self.rows:
            parts.append(format_table(self.headers, self.rows))
        if self.extra_text:
            parts.append(self.extra_text)
        if self.findings:
            parts.append("findings:")
            for key, value in self.findings.items():
                parts.append(f"  {key} = {value:.4f}"
                             if isinstance(value, float) else
                             f"  {key} = {value}")
        if self.notes:
            parts.append(f"notes: {self.notes}")
        return "\n".join(parts)


#: Registry of experiment ids to runner callables, populated by the modules.
REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {}

#: One-line description per experiment id (``--list`` prints these).
DESCRIPTIONS: Dict[str, str] = {}

#: Sweep axes each experiment consumes from its scenario document
#: (id -> axis names); :func:`repro.scenario.driver.bind_params` checks a
#: scenario's declared axes against this before the experiment runs.
EXPERIMENT_AXES: Dict[str, Tuple[str, ...]] = {}


def register(experiment_id: str, description: str = "",
             axes: Sequence[str] = ()):
    """Decorator adding an experiment's ``run`` function to the registry.

    The wrapped function takes ``(scale, params)`` where ``params`` is a
    :class:`~repro.scenario.params.ScenarioParams` carrying the base
    machine and the named sweep axes from a scenario document.  The
    registered callable keeps the legacy ``runner(scale)`` shape: called
    without params it resolves the experiment's committed scenario
    (``scenarios/<id>.toml``) — so ``repro-experiments fig5`` and
    ``repro-experiments run scenarios/fig5.toml`` execute identically,
    inside the same :func:`~repro.farm.context.scenario_scope`.

    Args:
        experiment_id: the CLI id (``fig5``, ``table1``, ...).
        description: one-line summary shown by ``--list``; defaults to the
            first line of the function's docstring.
        axes: sweep axis names the experiment reads via ``params.axis``;
            scenarios must declare exactly these.
    """

    def wrap(fn: Callable[..., ExperimentResult]):
        @functools.wraps(fn)
        def runner(scale: ExperimentScale, params=None) -> ExperimentResult:
            from repro.farm.context import scenario_scope

            if params is None:
                from repro.scenario.driver import default_params

                params = default_params(experiment_id)
            with scenario_scope(params.scenario_sha256):
                return fn(scale, params)

        REGISTRY[experiment_id] = runner
        EXPERIMENT_AXES[experiment_id] = tuple(axes)
        doc_line = (fn.__doc__ or "").strip().splitlines()
        DESCRIPTIONS[experiment_id] = (description
                                       or (doc_line[0] if doc_line else ""))
        runner.experiment_id = experiment_id
        runner.description = DESCRIPTIONS[experiment_id]
        runner.axes = tuple(axes)
        return runner

    return wrap


def experiment_registry() -> Dict[str, Callable[[ExperimentScale],
                                                ExperimentResult]]:
    """A read-only view of the experiment registry.

    Note: the registry fills as experiment modules import; use
    :func:`repro.experiments.experiment_registry` for a view that is
    guaranteed fully populated.
    """
    from types import MappingProxyType

    return MappingProxyType(REGISTRY)


def experiment_descriptions() -> Dict[str, str]:
    """A read-only view of the per-experiment one-line descriptions."""
    from types import MappingProxyType

    return MappingProxyType(DESCRIPTIONS)
