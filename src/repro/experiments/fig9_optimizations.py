"""Fig. 9: gains from the split L2 (fast L2-I on the MCM) and 8 W L1 fetch.

Three cumulative design points:

1. the base architecture (write-back, unified 256 KW L2 at 6 cycles);
2. Section 7's design: write-only L1-D policy, physically split L2 — a 32 KW
   two-cycle L2-I on the MCM and a 256 KW six-cycle L2-D off it (the paper
   reports a 34 % memory-system improvement at this point, memory CPI 0.242);
3. Section 8's design: additionally lengthen the L1 fetch/line size to 8
   words (the paper reports a further 0.026 CPI).

Also reproduced: the paper's sanity check that *swapping* the sizes/speeds
(fast 32 KW L2-D, large slow L2-I) costs ~21 % — it is L2-I that belongs on
the MCM.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.cpi import percent_improvement
from repro.core.config import (
    L2Config,
    SystemConfig,
    fetch8_architecture,
    split_l2_architecture,
)
from repro.experiments.common import (
    ExperimentResult,
    ExperimentScale,
    register,
    run_system,
)
from repro.scenario.params import ScenarioParams


def swapped_architecture(base: Optional[SystemConfig] = None):
    """The control: fast small L2-D on the MCM, big slow L2-I off it."""
    config = split_l2_architecture(base)
    return config.with_(
        name="swapped",
        l2=L2Config(size_words=256 * 1024, line_words=32, ways=1,
                    access_time=2, split=True,
                    i_size_words=256 * 1024, d_size_words=32 * 1024,
                    i_access_time=6),
    )


@register("fig9",
          description="Fig. 9: split L2 on the MCM plus 8-word fetch")
def run(scale: ExperimentScale,
        params: ScenarioParams) -> ExperimentResult:
    """Regenerate Fig. 9 (plus the swap control)."""
    base = params.machine
    steps = [
        ("base", base),
        ("split L2 (32KW 2-cyc L2-I)", split_l2_architecture(base)),
        ("+ 8W L1 fetch/line", fetch8_architecture(base)),
        ("swapped I/D (control)", swapped_architecture(base)),
    ]
    rows: List[List] = []
    results = {}
    for label, config in steps:
        stats = run_system(config, scale)
        results[label] = stats
        rows.append([label, stats.cpi(), stats.memory_cpi])
    base_mem = results["base"].memory_cpi
    split_mem = results["split L2 (32KW 2-cyc L2-I)"].memory_cpi
    fetch_cpi_gain = (results["split L2 (32KW 2-cyc L2-I)"].cpi()
                      - results["+ 8W L1 fetch/line"].cpi())
    swap_loss = percent_improvement(
        results["swapped I/D (control)"].memory_cpi, split_mem
    )
    return ExperimentResult(
        experiment_id="fig9",
        title="Gains from the split L2 on the MCM and 8W L1 fetch size",
        headers=["design point", "CPI", "memory CPI"],
        rows=rows,
        findings={
            "split_memory_improvement_pct": percent_improvement(base_mem,
                                                                split_mem),
            "fetch8_cpi_gain": fetch_cpi_gain,
            "swap_penalty_pct": swap_loss,
        },
        notes=("paper: split L2 gives a 34% memory-system improvement "
               "(memory CPI 0.242); 8W fetch adds 0.026 CPI; swapping "
               "I/D sizes/speeds costs ~21%"),
    )
