"""Technology derivation: the cycle counts behind the whole study.

Section 2 fixes the machine's timing constants from technology: 1-cycle
4 KW L1s built from 3 ns GaAs SRAMs on the MCM, a 6-cycle 256 KW BiCMOS L2
off it (10 ns parts, with 2 cycles of tag-check/communication latency),
+1 cycle for 2-way associativity (Fig. 6), a 2-cycle 32 KW L2-I once it
moves onto the MCM (Section 7), and R6020-bus main-memory penalties of
143/237 cycles.  This experiment regenerates those constants from the
SRAM/MCM/bus models in :mod:`repro.tech` and checks them against the
paper's quoted values.
"""

from __future__ import annotations

from typing import List

from repro.experiments.common import ExperimentResult, ExperimentScale, register
from repro.scenario.params import ScenarioParams
from repro.tech import derive_system_timing, paper_expectations


@register("tech",
          description="Technology derivation: timing constants vs. the paper")
def run(scale: ExperimentScale,
        params: ScenarioParams) -> ExperimentResult:
    """Derive the machine's timing constants and compare with the paper."""
    timing = derive_system_timing()
    expected = paper_expectations()
    derived = {
        "l1_read_cycles": timing.l1_read.cycles,
        "l2_unified_cycles": timing.l2_unified.cycles,
        "l2_unified_2way_cycles": timing.l2_unified_2way.cycles,
        "l2i_on_mcm_cycles": timing.l2i_on_mcm.cycles,
        "l2d_off_mcm_cycles": timing.l2d_off_mcm.cycles,
        "clean_miss_cycles": timing.memory.clean_miss_cycles,
        "dirty_miss_cycles": timing.memory.dirty_miss_cycles,
    }
    rows: List[List] = [
        [label, part, mounting, chips, total_ns, cycles]
        for label, part, mounting, chips, total_ns, cycles in timing.rows()
    ]
    rows.append(["main memory (clean miss)", "-", "bus", "-", "-",
                 timing.memory.clean_miss_cycles])
    rows.append(["main memory (dirty miss)", "-", "bus", "-", "-",
                 timing.memory.dirty_miss_cycles])
    mismatches = sum(1 for key in expected if derived[key] != expected[key])
    return ExperimentResult(
        experiment_id="tech",
        title="Timing constants derived from SRAM/MCM/bus technology",
        headers=["component", "part", "mount", "chips", "total ns",
                 "cycles"],
        rows=rows,
        findings={"mismatches_vs_paper": float(mismatches)},
        notes=("every derived constant must equal the paper's quoted value "
               "(mismatches_vs_paper = 0)"),
    )
