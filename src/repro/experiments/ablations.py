"""Design-choice ablations.

The paper fixes several design parameters by argument rather than sweep;
these ablations check that the simulator agrees with the argument:

* ``wbdepth`` — write-buffer depth for the write-through machine.  Section 6
  picks 8 entries of one word (the same storage as the write-back machine's
  4x4 W buffer, at a quarter of the I/O pins).  Too shallow a buffer stalls
  stores; beyond a handful of entries the returns vanish.
* ``wboverlap`` — how many cycles of L2 latency a stream of buffered writes
  can overlap ("one or both", Section 6).  More overlap drains faster and
  trims write-buffer waits.
* ``coloring`` — page coloring [TDF90] versus a random frame allocator.
  Coloring keeps contiguous virtual regions from self-conflicting in the
  physically-indexed L2, which is why the paper can rely on untranslated
  index bits.
"""

from __future__ import annotations

from typing import List

from repro.core.config import (
    WriteBufferConfig,
    WritePolicy,
    split_l2_architecture,
)
from repro.experiments.common import (
    ExperimentResult,
    ExperimentScale,
    register,
    run_system,
)
from repro.scenario.params import ScenarioParams


@register("wbdepth",
          description="Write-buffer depth ablation for the write-through policies",
          axes=("depths",))
def run_wb_depth(scale: ExperimentScale,
                 params: ScenarioParams) -> ExperimentResult:
    """Sweep the write-through write-buffer depth (Section 6's choice: 8)."""
    depths = params.axis("depths")
    rows: List[List] = []
    cpis = {}
    for depth in depths:
        config = split_l2_architecture(params.machine).with_(
            name=f"wb-depth-{depth}",
            write_buffer=WriteBufferConfig(depth=depth, width_words=1),
        )
        stats = run_system(config, scale)
        cpis[depth] = stats.cpi()
        rows.append([depth, stats.cpi(),
                     stats.stall_wb / max(stats.instructions, 1)])
    return ExperimentResult(
        experiment_id="wbdepth",
        title="Write-buffer depth ablation (write-only policy)",
        headers=["depth", "CPI", "WB stall CPI"],
        rows=rows,
        findings={
            "gain_1_to_8": cpis[depths[0]]
            - cpis[8 if 8 in depths else depths[-1]],
            "gain_8_to_16": cpis[8 if 8 in depths else depths[0]]
            - cpis[depths[-1]],
        },
        notes=("deepening past the paper's 8 entries buys almost nothing; "
               "a 1-2 entry buffer stalls stores"),
    )


@register("wboverlap",
          description="Write-buffer drain-pipelining overlap ablation",
          axes=("overlaps",))
def run_wb_overlap(scale: ExperimentScale,
                   params: ScenarioParams) -> ExperimentResult:
    """Sweep the drain-pipelining overlap (Section 6: 'one or both')."""
    overlaps = params.axis("overlaps")
    rows: List[List] = []
    cpis = {}
    for overlap in overlaps:
        config = split_l2_architecture(params.machine).with_(
            name=f"wb-overlap-{overlap}",
            write_buffer=WriteBufferConfig(depth=8, width_words=1,
                                           overlap_cycles=overlap),
        )
        stats = run_system(config, scale)
        cpis[overlap] = stats.cpi()
        rows.append([overlap, stats.cpi(),
                     stats.stall_wb / max(stats.instructions, 1)])
    return ExperimentResult(
        experiment_id="wboverlap",
        title="Write-drain latency-overlap ablation",
        headers=["overlap (cycles)", "CPI", "WB stall CPI"],
        rows=rows,
        findings={"gain_0_to_2": cpis[overlaps[0]] - cpis[overlaps[-1]]},
        notes="overlapping both latency cycles drains fastest (paper's model)",
    )


@register("coloring",
          description="Page coloring vs. pseudo-random frame allocation")
def run_coloring(scale: ExperimentScale,
                 params: ScenarioParams) -> ExperimentResult:
    """Page coloring vs. a pseudo-random frame allocator."""
    from repro.core.simulator import Simulation
    from repro.experiments.common import workload
    from repro.mmu.page_table import PageTable

    class RandomPageTable(PageTable):
        """First-touch allocator ignoring colors (hash-scattered frames)."""

        def translate_page(self, pid: int, vpage: int) -> int:
            key = (pid, vpage)
            frame = self._map.get(key)
            if frame is None:
                color = (vpage * 2654435761 + pid * 40503) % self.colors
                frame = color + self.colors * self._next_in_color[color]
                self._next_in_color[color] += 1
                self._map[key] = frame
            return frame

    config = params.machine
    rows: List[List] = []
    results = {}
    for label, table_cls in (("page coloring", PageTable),
                             ("random allocation", RandomPageTable)):
        sim = Simulation(config=config, profiles=workload(scale),
                         time_slice=scale.time_slice,
                         warmup_instructions=scale.warmup_instructions())
        # Swap the page table before any translation happens.
        table = table_cls()
        for process in sim.scheduler.ready_processes:
            process.page_table = table
        stats = sim.run()
        results[label] = stats
        rows.append([label, stats.cpi(), stats.l2_miss_ratio])
    return ExperimentResult(
        experiment_id="coloring",
        title="Page coloring vs. random frame allocation",
        headers=["allocator", "CPI", "L2 miss ratio"],
        rows=rows,
        findings={
            "coloring_cpi": results["page coloring"].cpi(),
            "random_cpi": results["random allocation"].cpi(),
        },
        notes=("coloring keeps contiguous regions from self-conflicting in "
               "the direct-mapped L2 (TDF90)"),
    )
