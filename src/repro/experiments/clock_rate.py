"""Section 3's closing observation: faster machines miss less.

Interrupts and OS scheduling are paced by wall-clock time (the paper works
from the VAX 8800's measured 0.9 ms between interrupts), so a faster CPU
executes more cycles — and more instructions — between context switches.
Since longer slices mean more reuse before eviction (Fig. 3), "faster
machines may achieve lower cache miss rates".

This experiment fixes the wall-clock switch interval and sweeps the CPU
clock: the time slice in cycles is ``interval / cycle_time``.  The 250 MHz
GaAs machine is the fastest point; the slower points stand in for the
contemporary CMOS parts the paper is implicitly comparing against.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.config import base_architecture
from repro.experiments.common import (
    ExperimentResult,
    ExperimentScale,
    register,
    run_system,
)

#: (label, cycle time ns).  250 MHz is the paper's machine.
CLOCKS: Sequence[Tuple[str, float]] = (
    ("62.5 MHz", 16.0),
    ("125 MHz", 8.0),
    ("250 MHz", 4.0),
)


@register("clockrate",
          description="CPU clock rate vs. memory CPI at a fixed wall-clock switch interval")
def run(scale: ExperimentScale) -> ExperimentResult:
    """Sweep the CPU clock at a fixed wall-clock switch interval.

    The wall-clock interval is chosen so the 250 MHz machine lands on the
    requested scale's time slice, keeping this experiment consistent with
    the others at any ``--time-slice``.
    """
    config = base_architecture()
    interval_ns = scale.time_slice * 4.0
    rows: List[List] = []
    miss_by_clock = {}
    for label, cycle_ns in CLOCKS:
        slice_cycles = max(1000, int(interval_ns / cycle_ns))
        stats = run_system(config, scale, time_slice=slice_cycles)
        miss_by_clock[label] = stats.l1d_miss_ratio
        rows.append([label, slice_cycles, stats.l1i_miss_ratio,
                     stats.l1d_miss_ratio, stats.l2_miss_ratio,
                     stats.cpi()])
    return ExperimentResult(
        experiment_id="clockrate",
        title="Fixed wall-clock switch interval, swept CPU clock "
              "(Section 3's observation)",
        headers=["clock", "slice (cycles)", "L1-I miss", "L1-D miss",
                 "L2 miss", "CPI"],
        rows=rows,
        findings={
            "l1d_slowest_clock": miss_by_clock["62.5 MHz"],
            "l1d_fastest_clock": miss_by_clock["250 MHz"],
            "faster_is_lower": float(
                miss_by_clock["250 MHz"] < miss_by_clock["62.5 MHz"]),
        },
        notes=("paper: 'faster machines may achieve lower cache miss rates "
               "because they execute more cycles between context switches'"),
    )
