"""Section 3's closing observation: faster machines miss less.

Interrupts and OS scheduling are paced by wall-clock time (the paper works
from the VAX 8800's measured 0.9 ms between interrupts), so a faster CPU
executes more cycles — and more instructions — between context switches.
Since longer slices mean more reuse before eviction (Fig. 3), "faster
machines may achieve lower cache miss rates".

This experiment fixes the wall-clock switch interval and sweeps the CPU
clock: the time slice in cycles is ``interval / cycle_time``.  The 250 MHz
GaAs machine is the fastest point; the slower points stand in for the
contemporary CMOS parts the paper is implicitly comparing against.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.experiments.common import (
    ExperimentResult,
    ExperimentScale,
    register,
    run_system,
)
from repro.scenario.params import ScenarioParams


def clocks_from(values: Sequence) -> Tuple[Tuple[str, float], ...]:
    """Convert scenario axis tables to ``(label, cycle ns)`` tuples."""
    out = []
    for value in values:
        if isinstance(value, dict):
            out.append((str(value["label"]), float(value["cycle_ns"])))
        else:
            out.append((str(value[0]), float(value[1])))
    return tuple(out)


@register("clockrate",
          description="CPU clock rate vs. memory CPI at a fixed wall-clock switch interval",
          axes=("clocks",))
def run(scale: ExperimentScale,
        params: ScenarioParams) -> ExperimentResult:
    """Sweep the CPU clock at a fixed wall-clock switch interval.

    The wall-clock interval is chosen so the 250 MHz machine lands on the
    requested scale's time slice, keeping this experiment consistent with
    the others at any ``--time-slice``.
    """
    clocks = clocks_from(params.axis("clocks"))
    config = params.machine
    interval_ns = scale.time_slice * 4.0
    rows: List[List] = []
    miss_by_clock = {}
    for label, cycle_ns in clocks:
        slice_cycles = max(1000, int(interval_ns / cycle_ns))
        stats = run_system(config, scale, time_slice=slice_cycles)
        miss_by_clock[label] = stats.l1d_miss_ratio
        rows.append([label, slice_cycles, stats.l1i_miss_ratio,
                     stats.l1d_miss_ratio, stats.l2_miss_ratio,
                     stats.cpi()])
    return ExperimentResult(
        experiment_id="clockrate",
        title="Fixed wall-clock switch interval, swept CPU clock "
              "(Section 3's observation)",
        headers=["clock", "slice (cycles)", "L1-I miss", "L1-D miss",
                 "L2 miss", "CPI"],
        rows=rows,
        findings={
            "l1d_slowest_clock": miss_by_clock[clocks[0][0]],
            "l1d_fastest_clock": miss_by_clock[clocks[-1][0]],
            "faster_is_lower": float(
                miss_by_clock[clocks[-1][0]] < miss_by_clock[clocks[0][0]]),
        },
        notes=("paper: 'faster machines may achieve lower cache miss rates "
               "because they execute more cycles between context switches'"),
    )
