"""Fig. 10: memory-system concurrency mechanisms (Section 9).

Starting from the Section 8 design point (write-only policy, split L2, 8 W
L1 lines), three mechanisms are added cumulatively:

1. *I refill during WB drain* — with a split L2, an L1-I miss refills from
   L2-I while the write buffer keeps draining into L2-D (paper: -0.011 CPI);
2. *loads pass stores* — data reads bypass buffered writes; the paper's
   dirty-bit scheme (flush only when a dirty L1-D line is replaced) is
   compared against full associative matching, achieving ~95 % of its
   benefit (paper: -0.008 CPI);
3. *L2-D dirty buffer* — a one-line victim buffer lets a dirty miss read the
   requested line from memory before writing the victim back
   (paper: -0.008 CPI).

The paper notes the total (-0.027 CPI) is small next to the size/speed
optimizations, questioning whether the last two are worth their hardware.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import (
    BypassMode,
    ConcurrencyConfig,
    SystemConfig,
    fetch8_architecture,
)
from repro.experiments.common import (
    ExperimentResult,
    ExperimentScale,
    register,
    run_system,
)
from repro.scenario.params import ScenarioParams


def steps(machine: Optional[SystemConfig] = None):
    """The cumulative configurations of Fig. 10 plus the associative control."""
    base = fetch8_architecture(machine)
    with_refill = base.with_(
        name="+i-refill",
        concurrency=ConcurrencyConfig(i_refill_during_wb_drain=True),
    )
    with_bypass = base.with_(
        name="+dwb-bypass",
        concurrency=ConcurrencyConfig(i_refill_during_wb_drain=True,
                                      bypass=BypassMode.DIRTY_BIT),
    )
    with_assoc = base.with_(
        name="+dwb-assoc",
        concurrency=ConcurrencyConfig(i_refill_during_wb_drain=True,
                                      bypass=BypassMode.ASSOCIATIVE),
    )
    with_dirty_buffer = base.with_(
        name="+l2-dirty-buffer",
        concurrency=ConcurrencyConfig(i_refill_during_wb_drain=True,
                                      bypass=BypassMode.DIRTY_BIT,
                                      l2_dirty_buffer=True),
    )
    return [
        ("section-8 design", base),
        ("+ I refill during WB drain", with_refill),
        ("+ loads pass stores (dirty bit)", with_bypass),
        ("+ loads pass stores (associative)", with_assoc),
        ("+ L2-D dirty buffer", with_dirty_buffer),
    ]


@register("fig10",
          description="Fig. 10: memory-system concurrency mechanisms")
def run(scale: ExperimentScale,
        params: ScenarioParams) -> ExperimentResult:
    """Regenerate Fig. 10."""
    rows: List[List] = []
    cpis = {}
    for label, config in steps(params.machine):
        stats = run_system(config, scale)
        cpis[label] = stats.cpi()
        rows.append([label, stats.cpi(), stats.memory_cpi])
    base_cpi = cpis["section-8 design"]
    refill_gain = base_cpi - cpis["+ I refill during WB drain"]
    bypass_gain = (cpis["+ I refill during WB drain"]
                   - cpis["+ loads pass stores (dirty bit)"])
    assoc_gain = (cpis["+ I refill during WB drain"]
                  - cpis["+ loads pass stores (associative)"])
    dirty_gain = (cpis["+ loads pass stores (dirty bit)"]
                  - cpis["+ L2-D dirty buffer"])
    return ExperimentResult(
        experiment_id="fig10",
        title="Performance gained from memory-system concurrency",
        headers=["design point", "CPI", "memory CPI"],
        rows=rows,
        findings={
            "i_refill_gain": refill_gain,
            "dwb_bypass_gain_dirty_bit": bypass_gain,
            "dwb_bypass_gain_associative": assoc_gain,
            "dirty_bit_fraction_of_associative": (
                bypass_gain / assoc_gain if assoc_gain > 0 else 1.0
            ),
            "l2_dirty_buffer_gain": dirty_gain,
            "total_gain": base_cpi - cpis["+ L2-D dirty buffer"],
        },
        notes=("paper: gains of 0.011 / 0.008 / 0.008 CPI; dirty-bit scheme "
               "reaches ~95% of associative matching; total 0.027 CPI is "
               "small next to size/speed optimizations"),
    )
