"""Fig. 6 and Table 2: secondary cache size and organization.

Four L2 organizations — unified/split x direct-mapped/2-way — over sizes
16 KW to 1024 KW.  Making a cache 2-way associative costs one extra CPU cycle
of access time (6 -> 7).  Fig. 6 reports CPI; Table 2 reports the L2 miss
ratios of the same 28 runs.

Paper's findings checked here:

* miss ratio falls with size for every organization;
* 2-way beats direct-mapped at equal size (miss-ratio-wise);
* splitting hurts small caches (halved capacity per side) but improves
  direct-mapped caches of 64 KW or more, by removing I/D mapping conflicts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import L2Config, SystemConfig, base_architecture
from repro.core.stats import SimStats
from repro.errors import ConfigurationError
from repro.experiments.common import (
    ExperimentResult,
    ExperimentScale,
    register,
    run_system,
)
from repro.scenario.params import ScenarioParams


def organizations_from(values: Sequence) -> Tuple[Tuple[str, bool, int], ...]:
    """Convert scenario axis tables to ``(label, split, ways)`` tuples."""
    out = []
    for value in values:
        if isinstance(value, dict):
            extra = set(value) - {"label", "split", "ways"}
            if extra or not {"label", "split", "ways"} <= set(value):
                raise ConfigurationError(
                    "sweep axis 'organizations' tables need exactly the "
                    "keys label, split, ways; got "
                    f"{', '.join(sorted(value)) or 'nothing'}")
            out.append((str(value["label"]), bool(value["split"]),
                        int(value["ways"])))
        else:
            out.append(tuple(value))
    return tuple(out)


def config_for(size_kw: int, split: bool, ways: int,
               base: Optional[SystemConfig] = None) -> SystemConfig:
    """Base architecture with one L2 organization."""
    if base is None:
        base = base_architecture()
    access_time = 6 if ways == 1 else 7
    return base.with_(
        name=f"l2-{size_kw}kw-{'split' if split else 'unified'}-{ways}w",
        l2=L2Config(size_words=size_kw * 1024, line_words=32, ways=ways,
                    access_time=access_time, split=split),
    )


def run_grid(scale: ExperimentScale,
             organizations: Sequence[Tuple[str, bool, int]],
             sizes_kw: Sequence[int],
             base: Optional[SystemConfig] = None
             ) -> Dict[Tuple[str, int], SimStats]:
    """Simulate the full grid; keyed by (org label, size KW)."""
    grid: Dict[Tuple[str, int], SimStats] = {}
    for label, split, ways in organizations:
        for size_kw in sizes_kw:
            grid[(label, size_kw)] = run_system(
                config_for(size_kw, split, ways, base=base), scale
            )
    return grid


@register("fig6",
          description="Fig. 6 + Table 2: L2 size and organization grid",
          axes=("organizations", "sizes_kw"))
def run(scale: ExperimentScale,
        params: ScenarioParams) -> ExperimentResult:
    """Regenerate Fig. 6 (CPI) and Table 2 (miss ratios) from one grid."""
    organizations = organizations_from(params.axis("organizations"))
    sizes_kw = params.axis("sizes_kw")
    grid = run_grid(scale, organizations, sizes_kw, base=params.machine)
    org_labels = [label for label, _, _ in organizations]

    cpi_rows: List[List] = []
    miss_rows: List[List] = []
    for size_kw in sizes_kw:
        cpi_rows.append([f"{size_kw}K"]
                        + [grid[(label, size_kw)].cpi()
                           for label in org_labels])
        miss_rows.append([f"{size_kw}K"]
                         + [grid[(label, size_kw)].l2_miss_ratio
                            for label in org_labels])

    from repro.analysis.tables import format_table
    table2 = format_table(
        ["size (words)"] + org_labels, miss_rows,
        title="Table 2: L2 miss ratios for the sizes and organizations "
              "of Fig. 6",
    )

    big = sizes_kw[-1]
    small = sizes_kw[0]
    findings = {
        "unified_1way_decline": (
            grid[("unified 1-way", small)].l2_miss_ratio
            / max(grid[("unified 1-way", big)].l2_miss_ratio, 1e-9)
        ),
        "assoc_gain_at_1024K": (
            grid[("unified 1-way", big)].l2_miss_ratio
            - grid[("unified 2-way", big)].l2_miss_ratio
        ),
        "split_gain_at_64K": (
            grid[("unified 1-way", 64 if 64 in sizes_kw else big)]
            .l2_miss_ratio
            - grid[("split 1-way", 64 if 64 in sizes_kw else big)]
            .l2_miss_ratio
        ),
        "split_loss_at_16K": (
            grid[("split 1-way", 16 if 16 in sizes_kw else small)]
            .l2_miss_ratio
            - grid[("unified 1-way", 16 if 16 in sizes_kw else small)]
            .l2_miss_ratio
        ),
    }
    return ExperimentResult(
        experiment_id="fig6",
        title="Performance of L2 sizes and organizations (CPI)",
        headers=["size (words)"] + org_labels,
        rows=cpi_rows,
        extra_text=table2,
        findings=findings,
        notes=("paper: splitting helps direct-mapped caches >= 64KW and "
               "hurts small ones; 2-way adds a cycle but lowers miss ratios"),
    )
