"""Power-performance Pareto frontier: CPI vs energy-per-instruction.

The paper buys speed with technology — GaAs DCFL SRAMs on an MCM — and
pays in standby watts (Section 2 quotes over a watt per L1 chip).  This
experiment makes that bill explicit: each technology point derives *both*
the L2 access time (:func:`repro.tech.timing.derive_cache_access`) and
the per-event energy model (:func:`repro.energy.derive_energy_model`)
from the same part/mounting choice, then sweeps L2 geometry under every
technology and reports which (technology, size, ways) points are
Pareto-optimal in (CPI, EPI).

The measured shape: ``all-gaas`` owns the low-CPI end of the frontier
(fast arrays close to the CPU, paid for in watts of DCFL standby
current), the paper's mixed machine owns the low-EPI end, and
``bicmos`` is dominated everywhere — its L2 is the paper's L2, so it
matches the paper's CPI point for point, but a board-mounted BiCMOS L1
pays more per access in PCB wire energy than the GaAs L1's standby
power costs per cycle.  The paper's partition (GaAs close to the CPU,
BiCMOS behind the connector) is recovered as a Pareto argument rather
than asserted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import L2Config, SystemConfig, base_architecture
from repro.core.stats import SimStats
from repro.energy import resolve_technology
from repro.experiments.common import (
    ExperimentResult,
    ExperimentScale,
    register,
    run_system,
)
from repro.scenario.params import ScenarioParams
from repro.tech.timing import derive_cache_access


@dataclass(frozen=True)
class ParetoPoint:
    """One (technology, geometry) design point and its two coordinates."""

    technology: str
    size_kw: int
    ways: int
    access_cycles: int
    cpi: float
    epi_pj: float
    stats: SimStats

    @property
    def label(self) -> str:
        return f"{self.technology}/{self.size_kw}KW/{self.ways}w"


def config_for(technology: str, size_kw: int, ways: int,
               base: Optional[SystemConfig] = None) -> SystemConfig:
    """Base architecture with the L2 this technology actually builds.

    The access time is *derived* from the technology's part and mounting,
    not copied from the paper's table — an all-GaAs L2 on the MCM is
    genuinely faster than the paper's board-mounted BiCMOS array, and
    that speed difference is what the energy axis trades against.
    """
    tech = resolve_technology(technology)
    access = derive_cache_access(
        f"L2 ({size_kw}KW, {technology})", size_kw * 1024,
        tech.l2_part, tech.l2_mounting, ways=ways)
    return (base if base is not None else base_architecture()).with_(
        name=f"pareto-{technology}-{size_kw}kw-{ways}w",
        l2=L2Config(size_words=size_kw * 1024, line_words=32, ways=ways,
                    access_time=access.cycles, split=False),
    )


def sweep(scale: ExperimentScale,
          params: Optional[ScenarioParams] = None) -> List[ParetoPoint]:
    """Run the full technology x geometry grid with energy accounting.

    ``params`` defaults to the committed ``scenarios/pareto.toml``
    resolution, so direct callers (tests, notebooks) sweep the same grid
    the CLI does.
    """
    if params is None:
        from repro.scenario.driver import default_params

        params = default_params("pareto")
    points: List[ParetoPoint] = []
    for technology in params.axis("technologies"):
        for size_kw in params.axis("sizes_kw"):
            for ways in params.axis("ways"):
                config = config_for(technology, size_kw, ways,
                                    base=params.machine)
                stats = run_system(config, scale, energy=technology)
                points.append(ParetoPoint(
                    technology=technology, size_kw=size_kw, ways=ways,
                    access_cycles=config.l2.access_time,
                    cpi=stats.cpi(), epi_pj=stats.epi_pj, stats=stats))
    return points


def pareto_frontier(points: Sequence[ParetoPoint]) -> List[ParetoPoint]:
    """The non-dominated subset: no other point is <= on both axes and
    strictly better on one.  Returned in ascending-CPI order."""
    frontier = [
        p for p in points
        if not any(q.cpi <= p.cpi and q.epi_pj <= p.epi_pj
                   and (q.cpi < p.cpi or q.epi_pj < p.epi_pj)
                   for q in points)
    ]
    return sorted(frontier, key=lambda p: (p.cpi, p.epi_pj))


@register("pareto",
          description="CPI-vs-EPI Pareto frontier over energy technologies",
          axes=("technologies", "sizes_kw", "ways"))
def run(scale: ExperimentScale,
        params: ScenarioParams) -> ExperimentResult:
    """Sweep technology x L2 geometry; report the CPI-vs-EPI frontier."""
    from repro.analysis.ascii_plot import scatter_chart

    points = sweep(scale, params)
    frontier = pareto_frontier(points)
    on_frontier = {p.label for p in frontier}

    rows: List[List] = []
    for p in sorted(points, key=lambda p: (p.cpi, p.epi_pj)):
        rows.append([
            "*" if p.label in on_frontier else "",
            p.technology, f"{p.size_kw}K", p.ways, p.access_cycles,
            round(p.cpi, 4), round(p.epi_pj, 1),
        ])

    series: Dict[str, List[Tuple[float, float]]] = {
        technology: [(p.cpi, p.epi_pj) for p in points
                     if p.technology == technology]
        for technology in params.axis("technologies")
    }
    series["frontier"] = [(p.cpi, p.epi_pj) for p in frontier]
    chart = scatter_chart(series, title="CPI vs energy per instruction",
                          x_label="CPI", y_label="EPI (pJ)")

    frontier_lines = ["frontier (ascending CPI):"]
    for p in frontier:
        frontier_lines.append(
            f"  {p.label:<20} CPI {p.cpi:.4f}, EPI {p.epi_pj:.1f} pJ")

    best_cpi = min(points, key=lambda p: p.cpi)
    best_epi = min(points, key=lambda p: p.epi_pj)
    techs_on_frontier = {p.technology for p in frontier}
    findings = {
        "points": float(len(points)),
        "frontier_size": float(len(frontier)),
        "frontier_technologies": float(len(techs_on_frontier)),
        "best_cpi": best_cpi.cpi,
        "best_cpi_epi_pj": best_cpi.epi_pj,
        "best_epi_pj": best_epi.epi_pj,
        "best_epi_cpi": best_epi.cpi,
        "paper_on_frontier": float(any(p.technology == "paper"
                                       for p in frontier)),
    }
    return ExperimentResult(
        experiment_id="pareto",
        title="Power-performance frontier over energy technologies",
        headers=["", "technology", "L2 size", "ways", "L2 cycles",
                 "CPI", "EPI (pJ)"],
        rows=rows,
        extra_text="\n".join(frontier_lines) + "\n\n" + chart,
        findings=findings,
        notes=("* marks Pareto-optimal points; both L2 access time and the "
               "energy model are derived from each technology's part and "
               "mounting, so the axes trade off through shared physics"),
    )

