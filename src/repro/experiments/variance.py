"""Sampling variability of the reproduction's headline numbers.

The paper runs each configuration once over 2.5 billion references; at
reproduction scale the synthetic traces are short enough that seed choice
matters.  This experiment reruns the base architecture over several
re-seeded workloads and reports mean, standard deviation and range for each
headline metric — the error bars to read EXPERIMENTS.md's absolute numbers
with.  Coefficients of variation of a few percent mean the qualitative
comparisons (which dominate the reproduction) are comfortably outside
noise.
"""

from __future__ import annotations

from typing import List

from repro.analysis.repeat import repeat_simulation
from repro.experiments.common import (
    ExperimentResult,
    ExperimentScale,
    register,
    workload,
)
from repro.scenario.params import ScenarioParams


@register("variance",
          description="Sampling variability over re-seeded workloads (error bars)",
          axes=("seeds",))
def run(scale: ExperimentScale,
        params: ScenarioParams) -> ExperimentResult:
    """Base-architecture metrics over re-seeded workloads."""
    seeds = len(params.axis("seeds"))
    summaries = repeat_simulation(
        params.machine,
        workload(scale),
        seeds=seeds,
        time_slice=scale.time_slice,
        level=scale.level,
        warmup_instructions=scale.warmup_instructions(),
    )
    rows: List[List] = []
    for name, summary in summaries.items():
        rows.append([name, summary.mean, summary.std,
                     summary.low, summary.high,
                     100.0 * summary.relative_std])
    return ExperimentResult(
        experiment_id="variance",
        title=f"Metric variability over {seeds} re-seeded workloads "
              "(base architecture)",
        headers=["metric", "mean", "std", "min", "max", "CV %"],
        rows=rows,
        findings={
            "cpi_cv_percent": 100.0 * summaries["cpi"].relative_std,
            "l2_cv_percent":
                100.0 * summaries["l2_miss_ratio"].relative_std,
        },
        notes=("small coefficients of variation mean the qualitative "
               "comparisons in the other experiments are outside noise"),
    )
