"""Reproduction-scale convergence study.

The paper runs ~2.5 billion references; this repository defaults to a few
million.  This experiment quantifies what that costs: it runs the base
architecture at a ladder of trace lengths (with the time slice scaled in
proportion, holding slices-per-benchmark constant) and reports how the miss
ratios move.  Expected behaviour: L1 ratios stabilize quickly; the L2 ratio
— dominated by compulsory first-touches at small scale — keeps falling
toward the paper's ~1 % as traces lengthen, without changing any of the
qualitative comparisons the other experiments make.
"""

from __future__ import annotations

from typing import List

from repro.experiments.common import (
    ExperimentResult,
    ExperimentScale,
    register,
    run_system,
)
from repro.scenario.params import ScenarioParams


@register("scaling",
          description="Scale convergence: trace length vs. reported metrics",
          axes=("factors",))
def run(scale: ExperimentScale,
        params: ScenarioParams) -> ExperimentResult:
    """Sweep trace length around the requested scale."""
    config = params.machine
    rows: List[List] = []
    l2_ratios = []
    for factor in params.axis("factors"):
        point = ExperimentScale(
            instructions_per_benchmark=max(
                10_000, int(scale.instructions_per_benchmark * factor)),
            level=scale.level,
            time_slice=max(5_000, int(scale.time_slice * factor)),
            warmup_fraction=scale.warmup_fraction,
        )
        stats = run_system(config, point)
        global_l2 = 1000.0 * stats.l2_misses / max(stats.instructions, 1)
        rows.append([
            point.instructions_per_benchmark,
            stats.l1i_miss_ratio,
            stats.l1d_miss_ratio,
            stats.l2_miss_ratio,
            global_l2,
            stats.cpi(),
        ])
        l2_ratios.append(global_l2)
    return ExperimentResult(
        experiment_id="scaling",
        title="Reproduction-scale convergence (base architecture)",
        headers=["instructions/benchmark", "L1-I miss", "L1-D miss",
                 "L2 local miss", "L2 misses/1k instr", "CPI"],
        rows=rows,
        findings={
            "l2_per_kinstr_smallest": l2_ratios[0],
            "l2_per_kinstr_largest": l2_ratios[-1],
            "l2_shrink_factor": (l2_ratios[0] / l2_ratios[-1]
                                 if l2_ratios[-1] else 0.0),
        },
        notes=("global L2 misses per instruction fall as traces lengthen "
               "(compulsory misses amortize) and CPI approaches the "
               "paper's 1.7; the *local* L2 ratio can rise because its "
               "denominator (L1 misses) falls even faster"),
    )
