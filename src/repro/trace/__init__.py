"""Trace substrate: records, synthetic benchmark generation, suite, file I/O."""

from repro.trace.record import (
    KIND_LOAD,
    KIND_NONE,
    KIND_STORE,
    TraceBatch,
    WorkloadSummary,
)
from repro.trace.stream import BatchSource, TraceSource, drain, summarize
from repro.trace.synthetic import (
    BenchmarkProfile,
    CodeProfile,
    DataProfile,
    SyntheticBenchmark,
)
from repro.trace.benchmarks import TABLE1_SUITE, default_suite, replicate_suite
from repro.trace.replay import DinTraceSource, load_syscall_file
from repro.trace.tracefile import export_din, import_din, load_npz, save_npz

__all__ = [
    "KIND_LOAD",
    "KIND_NONE",
    "KIND_STORE",
    "TraceBatch",
    "WorkloadSummary",
    "BatchSource",
    "TraceSource",
    "drain",
    "summarize",
    "BenchmarkProfile",
    "CodeProfile",
    "DataProfile",
    "SyntheticBenchmark",
    "TABLE1_SUITE",
    "default_suite",
    "replicate_suite",
    "DinTraceSource",
    "load_syscall_file",
    "export_din",
    "import_din",
    "load_npz",
    "save_npz",
]
