"""Trace records: the batch-of-instructions representation.

A trace is a sequence of *instructions*.  Every instruction implies one
instruction fetch at ``pc``; an instruction may additionally perform one data
access (a load or a store).  This mirrors the traces produced by ``pixie`` on
the MIPS systems the paper used: basic-block entry points expand to sequential
instruction fetches, and data-reference instructions contribute one data
address each.

Batches are columnar (numpy arrays) so that trace generation and
virtual-to-physical translation can be vectorized; the simulator's hot loop
converts columns to plain Python lists once per batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.errors import TraceError

#: Instruction performs no data access.
KIND_NONE = 0
#: Instruction performs a data load (word read).
KIND_LOAD = 1
#: Instruction performs a data store (word write).
KIND_STORE = 2

KIND_NAMES = {KIND_NONE: "none", KIND_LOAD: "load", KIND_STORE: "store"}

_ADDR_DTYPE = np.int64
_KIND_DTYPE = np.uint8


@dataclass
class TraceBatch:
    """A contiguous run of instructions from one process.

    Attributes:
        pc: word address of each instruction fetch.
        kind: ``KIND_NONE`` / ``KIND_LOAD`` / ``KIND_STORE`` per instruction.
        addr: data word address (meaningful only where ``kind != KIND_NONE``).
        partial: True where a store writes less than a full word (byte or
            half-word store).  Partial-word writes do not set valid bits under
            subblock placement (paper, Section 6).
        syscall: True where the instruction is a voluntary system call; the
            scheduler pessimistically context-switches at every such point
            (paper, Section 3).
    """

    pc: np.ndarray
    kind: np.ndarray
    addr: np.ndarray
    partial: np.ndarray
    syscall: np.ndarray

    def __post_init__(self) -> None:
        self.pc = np.ascontiguousarray(self.pc, dtype=_ADDR_DTYPE)
        self.kind = np.ascontiguousarray(self.kind, dtype=_KIND_DTYPE)
        self.addr = np.ascontiguousarray(self.addr, dtype=_ADDR_DTYPE)
        self.partial = np.ascontiguousarray(self.partial, dtype=bool)
        self.syscall = np.ascontiguousarray(self.syscall, dtype=bool)
        n = len(self.pc)
        for name in ("kind", "addr", "partial", "syscall"):
            if len(getattr(self, name)) != n:
                raise TraceError(
                    f"column '{name}' has length {len(getattr(self, name))}, "
                    f"expected {n}"
                )

    def __len__(self) -> int:
        return len(self.pc)

    def __getitem__(self, index) -> "TraceBatch":
        if not (isinstance(index, slice)
                or (isinstance(index, np.ndarray) and index.dtype == bool)):
            raise TypeError(
                "TraceBatch supports only slice or boolean-mask indexing")
        return TraceBatch(
            pc=self.pc[index],
            kind=self.kind[index],
            addr=self.addr[index],
            partial=self.partial[index],
            syscall=self.syscall[index],
        )

    @property
    def load_count(self) -> int:
        """Number of load instructions in the batch."""
        return int(np.count_nonzero(self.kind == KIND_LOAD))

    @property
    def store_count(self) -> int:
        """Number of store instructions in the batch."""
        return int(np.count_nonzero(self.kind == KIND_STORE))

    @property
    def syscall_count(self) -> int:
        """Number of voluntary system-call instructions in the batch."""
        return int(np.count_nonzero(self.syscall))

    def check_columns(self) -> None:
        """Raise :class:`TraceError` when the columns disagree in length
        (a truncated batch).  ``__post_init__`` enforces this at
        construction; this re-checks arrays mutated after the fact."""
        n = len(self.pc)
        for name in ("kind", "addr", "partial", "syscall"):
            if len(getattr(self, name)) != n:
                raise TraceError(
                    f"truncated trace batch: column '{name}' has length "
                    f"{len(getattr(self, name))}, expected {n}"
                )

    def validate(self) -> None:
        """Raise :class:`TraceError` if the batch violates trace invariants."""
        self.check_columns()
        if np.any(self.pc < 0) or np.any(self.addr < 0):
            raise TraceError("negative address in trace batch")
        if np.any(self.kind > KIND_STORE):
            raise TraceError("unknown access kind in trace batch")
        partial_non_store = self.partial & (self.kind != KIND_STORE)
        if np.any(partial_non_store):
            raise TraceError("partial flag set on a non-store instruction")

    def invalid_mask(self) -> np.ndarray:
        """Boolean mask of records violating per-row trace invariants.

        Columns must agree in length (:meth:`check_columns`); truncation is
        a structural defect a row mask cannot express."""
        self.check_columns()
        return ((self.pc < 0) | (self.addr < 0)
                | (self.kind > KIND_STORE)
                | (self.partial & (self.kind != KIND_STORE)))

    def references(self) -> int:
        """Total memory references (instruction fetches + data accesses)."""
        return len(self) + int(np.count_nonzero(self.kind != KIND_NONE))

    @staticmethod
    def empty() -> "TraceBatch":
        """An empty batch."""
        zero = np.zeros(0, dtype=_ADDR_DTYPE)
        return TraceBatch(
            pc=zero,
            kind=np.zeros(0, dtype=_KIND_DTYPE),
            addr=zero.copy(),
            partial=np.zeros(0, dtype=bool),
            syscall=np.zeros(0, dtype=bool),
        )

    @staticmethod
    def concat(batches: Sequence["TraceBatch"]) -> "TraceBatch":
        """Concatenate batches in order into a single batch."""
        if not batches:
            return TraceBatch.empty()
        return TraceBatch(
            pc=np.concatenate([b.pc for b in batches]),
            kind=np.concatenate([b.kind for b in batches]),
            addr=np.concatenate([b.addr for b in batches]),
            partial=np.concatenate([b.partial for b in batches]),
            syscall=np.concatenate([b.syscall for b in batches]),
        )


@dataclass
class WorkloadSummary:
    """Aggregate statistics of a trace, in the format of the paper's Table 1."""

    name: str
    instructions: int = 0
    loads: int = 0
    stores: int = 0
    syscalls: int = 0
    partial_stores: int = 0

    def add(self, batch: TraceBatch) -> None:
        """Accumulate one batch into the summary."""
        self.instructions += len(batch)
        self.loads += batch.load_count
        self.stores += batch.store_count
        self.syscalls += batch.syscall_count
        self.partial_stores += int(np.count_nonzero(batch.partial))

    @property
    def load_fraction(self) -> float:
        """Loads as a fraction of instructions."""
        return self.loads / self.instructions if self.instructions else 0.0

    @property
    def store_fraction(self) -> float:
        """Stores as a fraction of instructions."""
        return self.stores / self.instructions if self.instructions else 0.0

    @property
    def references(self) -> int:
        """Total memory references."""
        return self.instructions + self.loads + self.stores


def iter_instructions(batch: TraceBatch) -> Iterator[tuple]:
    """Iterate ``(pc, kind, addr, partial, syscall)`` tuples (slow; tests only)."""
    for i in range(len(batch)):
        yield (
            int(batch.pc[i]),
            int(batch.kind[i]),
            int(batch.addr[i]),
            bool(batch.partial[i]),
            bool(batch.syscall[i]),
        )
