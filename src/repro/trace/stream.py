"""Trace sources: the protocol connecting trace producers to the scheduler.

A *trace source* is anything with ``next_batch(max_len) -> TraceBatch | None``
plus ``done``/``reset``.  :class:`~repro.trace.synthetic.SyntheticBenchmark`
is the primary implementation; this module adds sources backed by in-memory
batches (for tests and replayed trace files) and a rechunking adaptor.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Protocol, runtime_checkable

from repro.errors import TraceError
from repro.trace.record import TraceBatch, WorkloadSummary


@runtime_checkable
class TraceSource(Protocol):
    """Protocol for objects that produce a finite instruction trace."""

    @property
    def done(self) -> bool:
        """True once the trace is exhausted."""

    def next_batch(self, max_len: Optional[int] = None) -> Optional[TraceBatch]:
        """Return the next batch (at most ``max_len`` instructions) or None."""

    def reset(self) -> None:
        """Rewind so the identical trace is produced again."""


class BatchSource:
    """A trace source replaying a fixed list of in-memory batches."""

    def __init__(self, batches: Iterable[TraceBatch]):
        self._batches: List[TraceBatch] = [b for b in batches if len(b)]
        self._index = 0
        self._offset = 0

    @property
    def done(self) -> bool:
        return self._index >= len(self._batches)

    def next_batch(self, max_len: Optional[int] = None) -> Optional[TraceBatch]:
        if self.done:
            return None
        batch = self._batches[self._index]
        remaining = len(batch) - self._offset
        take = remaining if max_len is None else min(max_len, remaining)
        if take <= 0:
            raise TraceError("max_len must be positive")
        out = batch[self._offset:self._offset + take]
        self._offset += take
        if self._offset >= len(batch):
            self._index += 1
            self._offset = 0
        return out

    def reset(self) -> None:
        self._index = 0
        self._offset = 0


def drain(source: TraceSource, max_len: Optional[int] = None) -> List[TraceBatch]:
    """Pull every remaining batch out of a source."""
    batches: List[TraceBatch] = []
    while True:
        batch = source.next_batch(max_len)
        if batch is None:
            break
        batches.append(batch)
    return batches


def summarize(source: TraceSource, name: str = "trace") -> WorkloadSummary:
    """Consume a source and return its Table-1-style summary statistics."""
    summary = WorkloadSummary(name=name)
    while True:
        batch = source.next_batch()
        if batch is None:
            break
        summary.add(batch)
    return summary
