"""The benchmark suite (paper, Table 1).

The paper's workload is a suite of C and FORTRAN programs from the MIPS
Performance Brief totalling about 2.5 billion memory references, run as a
multiprogrammed mix.  The original binaries and ``pixie`` traces are not
available, so each entry here is a :class:`BenchmarkProfile` for the synthetic
generator, with instruction counts, load/store fractions and system-call
counts chosen to match the era's published characteristics:

* overall store fraction ~= 0.0725 of instructions (Section 6),
* integer codes: larger/more irregular code, smaller data, byte/half-word
  stores, frequent system calls;
* floating-point codes: loop-dominated code, large array footprints,
  streaming access, almost no system calls.

Use :func:`default_suite` (optionally scaled down) to obtain the workload, and
:func:`replicate_suite` to widen it for multiprogramming levels above the
suite size.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.trace.synthetic import BenchmarkProfile, CodeProfile, DataProfile

_M = 1_000_000


def _integer(name: str, instructions: int, syscalls: int, seed: int,
             loads: float, stores: float, code_kw: int, warm_kw: int,
             cold_mw: float = 2.0) -> BenchmarkProfile:
    return BenchmarkProfile(
        name=name,
        category="I",
        instructions=instructions,
        syscalls=syscalls,
        seed=seed,
        code=CodeProfile(
            code_words=code_kw * 1024,
            phase_regions=6,
            loops_per_phase=16,
            loop_body_mean=200,
            loop_trip_mean=5.0,
            phase_length=11_000,
            far_call_prob=0.08,
            far_block_len=14,
        ),
        data=DataProfile(
            load_fraction=loads,
            store_fraction=stores,
            partial_store_fraction=0.22,
            hot_words=1536,
            warm_words=warm_kw * 1024,
            warm_window_words=5 * 1024,
            warm_drift=0.010,
            stream_words=2 * 1024,
            stream_stride=4,
            cold_words=int(cold_mw * 1024 * 1024),
            p_warm=0.026,
            p_stream=0.010,
            p_cold=0.00015,
            cold_exponent=1.5,
            store_locality=0.35,
            store_run_q=0.60,
        ),
    )


def _float(name: str, category: str, instructions: int, syscalls: int,
           seed: int, loads: float, stores: float, code_kw: int,
           warm_kw: int, stream_kw: int, cold_mw: float = 4.0) -> BenchmarkProfile:
    return BenchmarkProfile(
        name=name,
        category=category,
        instructions=instructions,
        syscalls=syscalls,
        seed=seed,
        code=CodeProfile(
            code_words=code_kw * 1024,
            phase_regions=3,
            loops_per_phase=8,
            loop_body_mean=300,
            loop_trip_mean=20.0,
            phase_length=45_000,
            far_call_prob=0.02,
            far_block_len=12,
        ),
        data=DataProfile(
            load_fraction=loads,
            store_fraction=stores,
            partial_store_fraction=0.02,
            hot_words=1536,
            warm_words=warm_kw * 1024,
            warm_window_words=6 * 1024,
            warm_drift=0.012,
            stream_words=stream_kw * 1024,
            stream_stride=4,
            cold_words=int(cold_mw * 1024 * 1024),
            p_warm=0.024,
            p_stream=0.018,
            p_cold=0.0002,
            cold_exponent=1.35,
            store_locality=0.5,
            store_run_q=0.50,
        ),
    )


#: The ten-benchmark suite standing in for the paper's Table 1.  Instruction
#: counts total ~1.92 billion, i.e. ~2.5 billion memory references.
TABLE1_SUITE: Sequence[BenchmarkProfile] = (
    _integer("espresso", 437 * _M, 94, seed=11,
             loads=0.205, stores=0.052, code_kw=8, warm_kw=24),
    _integer("gcc", 141 * _M, 1461, seed=12,
             loads=0.228, stores=0.097, code_kw=12, warm_kw=48),
    _integer("li", 263 * _M, 212, seed=13,
             loads=0.262, stores=0.118, code_kw=6, warm_kw=32),
    _integer("eqntott", 180 * _M, 41, seed=14,
             loads=0.196, stores=0.031, code_kw=4, warm_kw=48),
    _float("doduc", "S", 183 * _M, 19, seed=15,
           loads=0.252, stores=0.081, code_kw=8, warm_kw=24, stream_kw=3),
    _float("hspice", "S", 244 * _M, 186, seed=16,
           loads=0.268, stores=0.070, code_kw=10, warm_kw=64, stream_kw=3),
    _float("nasa7", "D", 225 * _M, 22, seed=17,
           loads=0.248, stores=0.084, code_kw=6, warm_kw=96, stream_kw=2),
    _float("matrix300", "D", 145 * _M, 12, seed=18,
           loads=0.290, stores=0.066, code_kw=4, warm_kw=32, stream_kw=2),
    _float("tomcatv", "D", 154 * _M, 14, seed=19,
           loads=0.244, stores=0.075, code_kw=4, warm_kw=64, stream_kw=3),
    _float("fpppp", "D", 205 * _M, 16, seed=20,
           loads=0.276, stores=0.092, code_kw=6, warm_kw=24, stream_kw=2),
)


def default_suite(instructions_per_benchmark: int = 0) -> List[BenchmarkProfile]:
    """Return the Table 1 suite, optionally rescaled.

    Args:
        instructions_per_benchmark: if non-zero, every benchmark is scaled to
            emit exactly this many instructions (system-call counts scale
            proportionally).  Zero keeps the full paper-scale counts.
    """
    if instructions_per_benchmark <= 0:
        return list(TABLE1_SUITE)
    return [
        profile.scaled(instructions_per_benchmark / profile.instructions)
        for profile in TABLE1_SUITE
    ]


def replicate_suite(profiles: Sequence[BenchmarkProfile],
                    count: int) -> List[BenchmarkProfile]:
    """Extend a suite to ``count`` entries by cloning with fresh seeds.

    Used for multiprogramming levels above the suite size (the paper sweeps up
    to 16 concurrent processes in Fig. 2); clones behave statistically like
    the original but produce distinct address reference sequences.
    """
    if count <= len(profiles):
        return list(profiles[:count])
    result = list(profiles)
    i = 0
    while len(result) < count:
        base = profiles[i % len(profiles)]
        clone_index = len(result)
        result.append(
            BenchmarkProfile(
                name=f"{base.name}.{clone_index}",
                category=base.category,
                instructions=base.instructions,
                syscalls=base.syscalls,
                code=base.code,
                data=base.data,
                seed=base.seed + 1000 * (clone_index + 1),
            )
        )
        i += 1
    return result
