"""Trace tooling CLI.

Usage::

    python -m repro.trace list
    python -m repro.trace generate espresso --instructions 200000 --out t.npz
    python -m repro.trace generate gcc --instructions 50000 --din t.din
    python -m repro.trace summarize t.npz
    python -m repro.trace analyze t.npz --cache-sizes 1024,4096,16384

``generate`` synthesizes one Table 1 benchmark's trace and writes it in the
native ``.npz`` format and/or dinero ``din`` format (for use with other
cache simulators).  ``summarize`` prints Table-1-style statistics and
``analyze`` prints a locality report with a miss-ratio curve.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.trace.analysis import (
    data_addresses,
    locality_report,
    miss_ratio_curve,
)
from repro.trace.benchmarks import TABLE1_SUITE
from repro.trace.record import TraceBatch, WorkloadSummary
from repro.trace.synthetic import SyntheticBenchmark
from repro.trace.tracefile import export_din, load_npz, save_npz


def _find_profile(name: str):
    for profile in TABLE1_SUITE:
        if profile.name == name:
            return profile
    raise SystemExit(
        f"unknown benchmark {name!r}; see `python -m repro.trace list`"
    )


def _generate(args: argparse.Namespace) -> int:
    profile = _find_profile(args.benchmark)
    scaled = profile.scaled(args.instructions / profile.instructions)
    bench = SyntheticBenchmark(scaled)
    batches: List[TraceBatch] = []
    while True:
        batch = bench.next_batch()
        if batch is None:
            break
        batches.append(batch)
    trace = TraceBatch.concat(batches)
    wrote = []
    if args.out is not None:
        save_npz(args.out, trace)
        wrote.append(str(args.out))
    if args.din is not None:
        records = export_din(args.din, trace)
        wrote.append(f"{args.din} ({records} din records)")
    if not wrote:
        print("nothing written: pass --out and/or --din", file=sys.stderr)
        return 2
    print(f"generated {len(trace):,} instructions of '{scaled.name}' -> "
          + ", ".join(wrote))
    return 0


def _summarize(args: argparse.Namespace) -> int:
    trace = load_npz(args.trace)
    summary = WorkloadSummary(name=str(args.trace))
    summary.add(trace)
    print(f"trace          : {summary.name}")
    print(f"instructions   : {summary.instructions:,}")
    print(f"references     : {summary.references:,}")
    print(f"loads          : {summary.loads:,} "
          f"({100 * summary.load_fraction:.2f}% of instructions)")
    print(f"stores         : {summary.stores:,} "
          f"({100 * summary.store_fraction:.2f}% of instructions)")
    print(f"partial stores : {summary.partial_stores:,}")
    print(f"system calls   : {summary.syscalls:,}")
    return 0


def _analyze(args: argparse.Namespace) -> int:
    trace = load_npz(args.trace)
    print(locality_report(trace))
    if args.cache_sizes:
        sizes = [int(s) for s in args.cache_sizes.split(",")]
        data = data_addresses(trace)
        curve = miss_ratio_curve(data.tolist(), sizes,
                                 warmup=min(len(data) // 4, 10_000))
        print("\ndata miss-ratio curve (direct-mapped, 4W lines):")
        for size, ratio in curve:
            print(f"  {size:>8} words : {ratio:.4f}")
    return 0


def _list(_args: argparse.Namespace) -> int:
    print("available benchmarks (Table 1 suite):")
    for profile in TABLE1_SUITE:
        print(f"  {profile.name:<10} [{profile.category}] "
              f"{profile.instructions / 1e6:7.0f}M instructions, "
              f"{profile.syscalls} syscalls")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace",
        description="Generate, summarize, analyze and export traces.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    gen = commands.add_parser("generate", help="synthesize a trace")
    gen.add_argument("benchmark", help="Table 1 benchmark name")
    gen.add_argument("--instructions", type=int, default=100_000)
    gen.add_argument("--out", type=Path, default=None,
                     help="write native .npz trace")
    gen.add_argument("--din", type=Path, default=None,
                     help="write dinero din trace")
    gen.set_defaults(func=_generate)

    summ = commands.add_parser("summarize", help="Table-1-style statistics")
    summ.add_argument("trace", type=Path, help=".npz trace file")
    summ.set_defaults(func=_summarize)

    analyze = commands.add_parser("analyze", help="locality report")
    analyze.add_argument("trace", type=Path, help=".npz trace file")
    analyze.add_argument("--cache-sizes", default="",
                         help="comma-separated sizes in words for a "
                              "miss-ratio curve")
    analyze.set_defaults(func=_analyze)

    lst = commands.add_parser("list", help="list the benchmark suite")
    lst.set_defaults(func=_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
