"""Replaying external traces.

The paper's simulator consumes ``pixie`` output plus, per benchmark, a
*system call file* "that contains the address of all system call
instructions" so the scheduler can pessimistically context-switch at every
voluntary system call (Section 3).  This module provides the equivalent for
externally produced traces:

* :class:`DinTraceSource` — stream a dinero ``din`` file (of any size) as a
  :class:`~repro.trace.stream.TraceSource`, batch by batch, without loading
  it into memory;
* :func:`load_syscall_file` — read a system-call file (one instruction
  address per line, hex byte addresses like din records); the source marks
  the syscall flag wherever the program counter matches, exactly as the
  paper's hash-table lookup does.

Together these let real traces replace the synthetic suite wholesale::

    source = DinTraceSource("gcc.din",
                            syscall_pcs=load_syscall_file("gcc.sys"))
    process = Process(pid=1, name="gcc", source=source, page_table=table)
"""

from __future__ import annotations

import os
from typing import FrozenSet, Iterable, List, Optional, Set, Union

import numpy as np

from repro.errors import TraceError
from repro.params import WORD_BYTES
from repro.trace.record import KIND_LOAD, KIND_NONE, KIND_STORE, TraceBatch
from repro.trace.tracefile import DIN_IFETCH, DIN_READ, DIN_WRITE

PathLike = Union[str, os.PathLike]

_DEFAULT_BATCH = 1 << 14


def load_syscall_file(path_or_lines: Union[PathLike, Iterable[str]]
                      ) -> FrozenSet[int]:
    """Read a system-call file into a set of word-granular PCs.

    Format: one instruction address per line, hex, byte-granular (matching
    din records); blank lines and ``#`` comments are ignored.
    """
    own = isinstance(path_or_lines, (str, os.PathLike))
    lines = open(path_or_lines) if own else path_or_lines
    try:
        pcs: Set[int] = set()
        for line_no, line in enumerate(lines, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                pcs.add(int(line, 16) // WORD_BYTES)
            except ValueError as exc:
                raise TraceError(
                    f"malformed system-call address at line {line_no}: "
                    f"{line!r}"
                ) from exc
        return frozenset(pcs)
    finally:
        if own:
            lines.close()


class DinTraceSource:
    """A TraceSource streaming a dinero ``din`` file.

    Records are paired the way :func:`repro.trace.tracefile.export_din`
    writes them: each ifetch may be followed by one data record; a second
    consecutive data record is attributed to a synthetic repeat-ifetch so
    no reference is dropped.

    Args:
        path: the din file.
        syscall_pcs: word-granular PCs to flag as voluntary system calls.
        batch_size: instructions per emitted batch.
    """

    def __init__(self, path: PathLike,
                 syscall_pcs: FrozenSet[int] = frozenset(),
                 batch_size: int = _DEFAULT_BATCH):
        if batch_size <= 0:
            raise TraceError("batch_size must be positive")
        self.path = path
        self.syscall_pcs = frozenset(syscall_pcs)
        self.batch_size = batch_size
        self._file = open(path, "r")
        self._line_no = 0
        self._done = False
        #: A data record seen before its ifetch partner is impossible in
        #: our pairing, but a pending ifetch waits for a possible data
        #: record from the next read.
        self._pending_pc: Optional[int] = None

    @property
    def done(self) -> bool:
        """True once the file is exhausted."""
        return self._done and self._pending_pc is None

    def _parse(self, line: str):
        parts = line.split()
        if len(parts) != 2:
            raise TraceError(
                f"malformed din record at line {self._line_no}: {line!r}")
        try:
            return int(parts[0]), int(parts[1], 16) // WORD_BYTES
        except ValueError as exc:
            raise TraceError(
                f"malformed din record at line {self._line_no}: {line!r}"
            ) from exc

    def next_batch(self, max_len: Optional[int] = None
                   ) -> Optional[TraceBatch]:
        if self.done:
            return None
        want = min(self.batch_size,
                   max_len if max_len is not None else self.batch_size)
        pcs: List[int] = []
        kinds: List[int] = []
        addrs: List[int] = []

        def flush_pending() -> None:
            if self._pending_pc is not None:
                pcs.append(self._pending_pc)
                kinds.append(KIND_NONE)
                addrs.append(0)
                self._pending_pc = None

        while len(pcs) < want:
            raw = self._file.readline()
            if not raw:
                self._done = True
                flush_pending()
                break
            self._line_no += 1
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            label, word_addr = self._parse(line)
            if label == DIN_IFETCH:
                flush_pending()
                self._pending_pc = word_addr
            elif label in (DIN_READ, DIN_WRITE):
                if self._pending_pc is None:
                    if not pcs:
                        raise TraceError(
                            f"data record before any ifetch at line "
                            f"{self._line_no}")
                    # Second data record: synthetic repeat ifetch.
                    self._pending_pc = pcs[-1]
                pcs.append(self._pending_pc)
                kinds.append(KIND_STORE if label == DIN_WRITE else KIND_LOAD)
                addrs.append(word_addr)
                self._pending_pc = None
            else:
                raise TraceError(
                    f"unknown din label {label} at line {self._line_no}")
        if not pcs:
            return None
        pc_array = np.asarray(pcs, dtype=np.int64)
        syscall = np.zeros(len(pcs), dtype=bool)
        if self.syscall_pcs:
            syscall = np.asarray([pc in self.syscall_pcs for pc in pcs],
                                 dtype=bool)
        return TraceBatch(
            pc=pc_array,
            kind=np.asarray(kinds, dtype=np.uint8),
            addr=np.asarray(addrs, dtype=np.int64),
            partial=np.zeros(len(pcs), dtype=bool),
            syscall=syscall,
        )

    def reset(self) -> None:
        """Rewind to the start of the file."""
        self._file.close()
        self._file = open(self.path, "r")
        self._line_no = 0
        self._done = False
        self._pending_pc = None

    def close(self) -> None:
        """Release the file handle."""
        self._file.close()
        self._done = True
