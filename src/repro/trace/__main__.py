"""``python -m repro.trace`` entry point."""

import sys

from repro.trace.cli import main

if __name__ == "__main__":
    sys.exit(main())
