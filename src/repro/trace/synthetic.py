"""Synthetic address-trace generation.

The paper drives its simulator with ~2.5 billion references collected from the
MIPS benchmark suite via ``pixie``.  Those binaries and traces are not
available, so this module provides the closest synthetic equivalent: a
two-part locality model whose parameters are calibrated (see
``repro.trace.benchmarks``) to land in the paper's reported ranges — write
fraction ~7 % of instructions, L1 miss ratios of a few percent at 4 KW, L2
local miss ratios near 1 % at 256 KW, instruction footprints that stop paying
off past ~64 KW of L2 while data footprints keep paying to 512 KW and beyond.

Instruction model
    A benchmark's code is divided into *phase regions*.  Execution sits in one
    phase for ``phase_length`` instructions, repeatedly choosing a loop from
    that phase's pool (Zipf-weighted so a few loops dominate), running its body
    for a geometrically distributed trip count, and occasionally calling a
    "far" helper block elsewhere in the code region.  This produces the
    sequential runs, tight reuse, and occasional excursions of real code.

Data model
    Each load/store address is drawn from a four-component mixture:

    * ``hot``  — small region (stack + scalars); almost always L1-resident.
    * ``warm`` — a *drifting window* into a mid-size region: the window is a
      few times larger than the L1-D, so most warm accesses miss L1 but hit
      L2; the window drifts slowly (``warm_drift`` words per warm access),
      giving a controllable compulsory-miss floor, and a too-small (or
      multiprogram-contended) L2 loses window lines between time slices —
      the mechanism behind the paper's Fig. 2 L2 sensitivity to
      multiprogramming level.
    * ``stream`` — sequential scan through an array region (spatial locality:
      one miss per line).
    * ``cold`` — rare accesses over a very large region with mild power-law
      concentration; responsible for the L2 miss-ratio floor and for the
      continued benefit of very large L2s.

    Stores draw from the same mixture with their non-hot probabilities scaled
    by ``store_locality`` — stores are more stack/scalar-local than loads,
    which is what gives the paper's 98 % write-hit rate at 4 KW.

All randomness is drawn from a per-benchmark seeded generator, so traces are
fully deterministic and runs are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.trace.record import KIND_LOAD, KIND_NONE, KIND_STORE, TraceBatch

#: Virtual base addresses (word granular) of each region of a process's
#: address space.  The layout is identical for every process; PIDs keep the
#: spaces distinct (paper, Section 3).  Bases are staggered by a few pages so
#: that, under page coloring, a process's regions start on different colors
#: (real segments are not all megabyte-aligned either).
_PAGE = 4096
CODE_BASE = 0x0040_0000 + 3 * _PAGE
HOT_BASE = 0x1000_0000 + 37 * _PAGE
WARM_BASE = 0x1200_0000 + 89 * _PAGE
STREAM_BASE = 0x1800_0000 + 151 * _PAGE
COLD_BASE = 0x2000_0000 + 211 * _PAGE

_DEFAULT_BATCH = 1 << 16


@dataclass(frozen=True)
class CodeProfile:
    """Parameters of the instruction-address model."""

    code_words: int = 16384
    phase_regions: int = 4
    loops_per_phase: int = 12
    loop_body_mean: int = 48
    loop_trip_mean: float = 12.0
    phase_length: int = 400_000
    far_call_prob: float = 0.04
    far_block_len: int = 12

    def validate(self) -> None:
        if self.code_words < self.phase_regions * self.loop_body_mean:
            raise ConfigurationError(
                "code region too small for the requested loop structure"
            )
        if not 0.0 <= self.far_call_prob <= 1.0:
            raise ConfigurationError("far_call_prob must be a probability")


@dataclass(frozen=True)
class DataProfile:
    """Parameters of the data-address model."""

    load_fraction: float = 0.22
    store_fraction: float = 0.0725
    partial_store_fraction: float = 0.10
    hot_words: int = 2048
    warm_words: int = 65536
    warm_window_words: int = 6144
    #: Words the warm window advances per warm access (sets the compulsory
    #: L2-D miss floor: one new line every ``4 / warm_drift`` warm accesses).
    warm_drift: float = 0.01
    stream_words: int = 16384
    #: Words the stream cursor advances per stream access (stride 4 = one
    #: access per line, a strided column scan; stride 1 = unit-stride scan).
    stream_stride: int = 1
    cold_words: int = 2 * 1024 * 1024
    p_warm: float = 0.032
    p_stream: float = 0.015
    p_cold: float = 0.0004
    cold_exponent: float = 1.4
    #: Multiplier applied to a store's non-hot component probabilities;
    #: below 1.0 makes stores more local than loads.
    store_locality: float = 0.4
    #: Probability that a store continues a sequential run at the address
    #: after the previous store (struct fills, saves, memset-like behaviour).
    #: Runs are what give write-allocating policies (write-only, subblock)
    #: their one-cycle hits on the stores following a write miss.
    store_run_q: float = 0.55

    @property
    def p_hot(self) -> float:
        """Probability mass of the hot component (the remainder)."""
        return 1.0 - self.p_warm - self.p_stream - self.p_cold

    def validate(self) -> None:
        if not 0.0 <= self.load_fraction + self.store_fraction <= 1.0:
            raise ConfigurationError("load + store fractions exceed 1")
        if self.p_hot < 0.0:
            raise ConfigurationError("mixture probabilities exceed 1")
        for name in ("hot_words", "warm_words", "warm_window_words",
                     "stream_words", "cold_words"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if self.warm_window_words > self.warm_words:
            raise ConfigurationError("warm window larger than the warm region")
        if self.warm_drift < 0:
            raise ConfigurationError("warm_drift must be non-negative")
        if self.stream_stride <= 0:
            raise ConfigurationError("stream_stride must be positive")
        if not 0.0 <= self.store_locality <= 1.0:
            raise ConfigurationError("store_locality must be within [0, 1]")
        if not 0.0 <= self.store_run_q < 1.0:
            raise ConfigurationError("store_run_q must be within [0, 1)")


@dataclass(frozen=True)
class BenchmarkProfile:
    """Everything needed to synthesize one benchmark's trace."""

    name: str
    category: str  # "I" integer, "S" single-precision FP, "D" double-precision
    instructions: int
    syscalls: int
    code: CodeProfile
    data: DataProfile
    seed: int = 0

    def validate(self) -> None:
        if self.instructions <= 0:
            raise ConfigurationError("instructions must be positive")
        if self.syscalls < 0:
            raise ConfigurationError("syscalls must be non-negative")
        if self.category not in ("I", "S", "D"):
            raise ConfigurationError("category must be one of I, S, D")
        self.code.validate()
        self.data.validate()

    def scaled(self, factor: float) -> "BenchmarkProfile":
        """Return a copy with instruction/syscall counts scaled by ``factor``."""
        return BenchmarkProfile(
            name=self.name,
            category=self.category,
            instructions=max(1, int(round(self.instructions * factor))),
            syscalls=max(0, int(round(self.syscalls * factor))),
            code=self.code,
            data=self.data,
            seed=self.seed,
        )


class SyntheticBenchmark:
    """Deterministic batch-by-batch trace generator for one benchmark.

    Implements the ``TraceSource`` protocol used by the scheduler: repeated
    calls to :meth:`next_batch` yield :class:`TraceBatch` objects until the
    benchmark's instruction budget is exhausted, after which ``None`` is
    returned.
    """

    def __init__(self, profile: BenchmarkProfile, batch_size: int = _DEFAULT_BATCH):
        profile.validate()
        if batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        self.profile = profile
        self.batch_size = batch_size
        self._rng = np.random.default_rng(profile.seed)
        self._emitted = 0
        self._stream_cursor = 0
        self._warm_count = 0
        self._loop_pools = self._build_loop_pools()
        self._syscall_points = self._build_syscall_points()
        self._next_syscall_idx = 0

    # ------------------------------------------------------------------ setup

    def _build_loop_pools(self) -> List[List[Tuple[int, int]]]:
        """Precompute (start_pc, body_len) loop pools, one pool per phase."""
        code = self.profile.code
        region_words = code.code_words // code.phase_regions
        pools: List[List[Tuple[int, int]]] = []
        for phase in range(code.phase_regions):
            region_base = CODE_BASE + phase * region_words
            pool = []
            for _ in range(code.loops_per_phase):
                body = int(self._rng.integers(
                    max(4, code.loop_body_mean // 3), code.loop_body_mean * 2
                ))
                body = min(body, region_words)
                start = region_base + int(
                    self._rng.integers(0, max(1, region_words - body))
                )
                pool.append((start, body))
            pools.append(pool)
        return pools

    def _build_syscall_points(self) -> np.ndarray:
        """Instruction indices at which voluntary system calls occur."""
        n = self.profile.syscalls
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        points = self._rng.uniform(0, self.profile.instructions, size=n)
        return np.sort(points.astype(np.int64))

    # ------------------------------------------------------- instruction side

    def _zipf_weights(self, n: int) -> np.ndarray:
        ranks = np.arange(1, n + 1, dtype=np.float64)
        weights = 1.0 / ranks ** 1.2
        return weights / weights.sum()

    def _gen_pcs(self, want: int) -> np.ndarray:
        """Generate at least ``want`` instruction addresses (then trimmed)."""
        code = self.profile.code
        rng = self._rng
        segments: List[np.ndarray] = []
        produced = 0
        emitted_base = self._emitted
        while produced < want:
            phase = (
                (emitted_base + produced) // code.phase_length
            ) % code.phase_regions
            pool = self._loop_pools[phase]
            weights = self._pool_weights(len(pool))
            loop_idx = int(rng.choice(len(pool), p=weights))
            start, body = pool[loop_idx]
            trips = 1 + int(rng.geometric(1.0 / code.loop_trip_mean))
            segment = np.tile(np.arange(start, start + body, dtype=np.int64), trips)
            segments.append(segment)
            produced += len(segment)
            if rng.random() < code.far_call_prob:
                far_start = CODE_BASE + int(
                    rng.integers(0, max(1, code.code_words - code.far_block_len))
                )
                far = np.arange(
                    far_start, far_start + code.far_block_len, dtype=np.int64
                )
                segments.append(far)
                produced += len(far)
        return np.concatenate(segments)[:want]

    def _pool_weights(self, n: int) -> np.ndarray:
        # Cached per pool size; all pools share the same size in practice.
        cache = getattr(self, "_weights_cache", None)
        if cache is None or len(cache) != n:
            cache = self._zipf_weights(n)
            self._weights_cache = cache
        return cache

    # -------------------------------------------------------------- data side

    def _gen_data(self, n: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Generate kinds, data addresses and partial flags for ``n`` instrs."""
        d = self.profile.data
        rng = self._rng
        u = rng.random(n)
        kinds = np.full(n, KIND_NONE, dtype=np.uint8)
        load_mask = u < d.load_fraction
        kinds[load_mask] = KIND_LOAD
        store_mask = (u >= d.load_fraction) & (
            u < d.load_fraction + d.store_fraction
        )
        kinds[store_mask] = KIND_STORE

        addrs = np.zeros(n, dtype=np.int64)
        n_load = int(np.count_nonzero(load_mask))
        if n_load:
            addrs[load_mask] = self._gen_addresses(n_load, locality=1.0)
        n_store = int(np.count_nonzero(store_mask))
        if n_store:
            fresh_addrs = self._gen_addresses(n_store,
                                              locality=d.store_locality)
            addrs[store_mask] = self._cluster_stores(fresh_addrs)

        partial = np.zeros(n, dtype=bool)
        if d.partial_store_fraction > 0.0:
            store_idx = np.flatnonzero(store_mask)
            if len(store_idx):
                partial_draw = rng.random(len(store_idx)) < d.partial_store_fraction
                partial[store_idx[partial_draw]] = True
        return kinds, addrs, partial

    def _cluster_stores(self, fresh_addrs: np.ndarray) -> np.ndarray:
        """Turn independent store addresses into sequential store runs.

        With probability ``store_run_q`` a store writes the word after the
        previous store; otherwise it starts a fresh run at its drawn address.
        (Successive stores in one run land in the same or the next cache
        line, which is the behaviour that rewards write-allocation.)
        """
        q = self.profile.data.store_run_q
        n = len(fresh_addrs)
        if q <= 0.0 or n == 0:
            return fresh_addrs
        starts = self._rng.random(n) >= q
        starts[0] = True
        positions = np.arange(n, dtype=np.int64)
        run_start = np.where(starts, positions, 0)
        run_start = np.maximum.accumulate(run_start)
        return fresh_addrs[run_start] + (positions - run_start)

    def _gen_addresses(self, n: int, locality: float) -> np.ndarray:
        """Draw ``n`` data addresses from the hot/warm/stream/cold mixture.

        ``locality`` scales the non-hot component probabilities (stores pass
        their profile's ``store_locality``; loads pass 1.0).
        """
        d = self.profile.data
        rng = self._rng
        comp = rng.random(n)
        addrs = np.empty(n, dtype=np.int64)

        hot_cut = 1.0 - (d.p_warm + d.p_stream + d.p_cold) * locality
        warm_cut = hot_cut + d.p_warm * locality
        stream_cut = warm_cut + d.p_stream * locality

        hot_mask = comp < hot_cut
        warm_mask = (comp >= hot_cut) & (comp < warm_cut)
        stream_mask = (comp >= warm_cut) & (comp < stream_cut)
        cold_mask = comp >= stream_cut

        n_hot = int(np.count_nonzero(hot_mask))
        if n_hot:
            addrs[hot_mask] = HOT_BASE + rng.integers(
                0, d.hot_words, size=n_hot, dtype=np.int64
            )

        n_warm = int(np.count_nonzero(warm_mask))
        if n_warm:
            # A window of warm_window_words that drifts warm_drift words per
            # warm access, wrapping around the warm region.
            starts = (
                (self._warm_count + np.arange(n_warm, dtype=np.float64))
                * d.warm_drift
            ).astype(np.int64)
            self._warm_count += n_warm
            offsets = rng.integers(0, d.warm_window_words, size=n_warm,
                                   dtype=np.int64)
            addrs[warm_mask] = WARM_BASE + (starts + offsets) % d.warm_words

        n_stream = int(np.count_nonzero(stream_mask))
        if n_stream:
            stride = d.stream_stride
            positions = (
                self._stream_cursor
                + np.arange(n_stream, dtype=np.int64) * stride
            ) % d.stream_words
            self._stream_cursor = int(
                (self._stream_cursor + n_stream * stride) % d.stream_words
            )
            addrs[stream_mask] = STREAM_BASE + positions

        n_cold = int(np.count_nonzero(cold_mask))
        if n_cold:
            frac = rng.random(n_cold) ** d.cold_exponent
            idx = (frac * d.cold_words).astype(np.int64)
            addrs[cold_mask] = COLD_BASE + np.minimum(idx, d.cold_words - 1)

        return addrs

    # ------------------------------------------------------------- public API

    @property
    def instructions_remaining(self) -> int:
        """Instructions not yet emitted."""
        return self.profile.instructions - self._emitted

    @property
    def done(self) -> bool:
        """True once the benchmark's full trace has been emitted."""
        return self._emitted >= self.profile.instructions

    def next_batch(self, max_len: Optional[int] = None) -> Optional[TraceBatch]:
        """Produce the next batch of at most ``max_len`` instructions.

        Returns ``None`` when the benchmark has terminated.
        """
        if self.done:
            return None
        want = min(
            self.batch_size if max_len is None else max_len,
            self.instructions_remaining,
        )
        pcs = self._gen_pcs(want)
        kinds, addrs, partial = self._gen_data(want)
        syscall = self._syscall_flags(want)
        self._emitted += want
        return TraceBatch(
            pc=pcs, kind=kinds, addr=addrs, partial=partial, syscall=syscall
        )

    def _syscall_flags(self, want: int) -> np.ndarray:
        flags = np.zeros(want, dtype=bool)
        lo, hi = self._emitted, self._emitted + want
        points = self._syscall_points
        i = self._next_syscall_idx
        while i < len(points) and points[i] < hi:
            if points[i] >= lo:
                flags[points[i] - lo] = True
            i += 1
        self._next_syscall_idx = i
        return flags

    def reset(self) -> None:
        """Rewind the generator to reproduce the identical trace again."""
        self._rng = np.random.default_rng(self.profile.seed)
        self._emitted = 0
        self._stream_cursor = 0
        self._warm_count = 0
        self._loop_pools = self._build_loop_pools()
        self._syscall_points = self._build_syscall_points()
        self._next_syscall_idx = 0

    # ------------------------------------------------------------- robustness

    def state_dict(self) -> dict:
        """Exact snapshot of the generator's evolving state.

        Loop pools and syscall points are deterministic functions of the
        profile seed (they are drawn before any batch), so only the evolving
        state needs to travel: the raw RNG state and the cursors.  Restoring
        this snapshot into a freshly constructed generator for the same
        profile reproduces the identical remaining trace.
        """
        return {
            "rng": self._rng.bit_generator.state,
            "emitted": self._emitted,
            "stream_cursor": self._stream_cursor,
            "warm_count": self._warm_count,
            "next_syscall_idx": self._next_syscall_idx,
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (same profile required)."""
        from repro.errors import CheckpointError

        try:
            self._rng.bit_generator.state = state["rng"]
            self._emitted = int(state["emitted"])
            self._stream_cursor = int(state["stream_cursor"])
            self._warm_count = int(state["warm_count"])
            self._next_syscall_idx = int(state["next_syscall_idx"])
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"malformed trace-generator snapshot: {exc}") from exc
