"""Trace file I/O.

Two formats are supported:

* ``.npz`` — the native columnar format: fast, compact, lossless.
* ``din``  — the classic dinero ASCII format (one ``<label> <hex-addr>`` pair
  per reference; label 0 = data read, 1 = data write, 2 = instruction fetch),
  provided for interoperability with other cache simulators.  Addresses in din
  files are byte addresses, as dinero expects; metadata that dinero cannot
  carry (partial-store and system-call flags) is dropped on export and absent
  on import.
"""

from __future__ import annotations

import io
import os
from typing import List, Union

import numpy as np

from repro.errors import TraceError
from repro.params import WORD_BYTES
from repro.trace.record import KIND_LOAD, KIND_NONE, KIND_STORE, TraceBatch

DIN_READ = 0
DIN_WRITE = 1
DIN_IFETCH = 2

PathLike = Union[str, os.PathLike]


def save_npz(path: PathLike, batch: TraceBatch) -> None:
    """Write a batch to the native ``.npz`` format."""
    np.savez_compressed(
        path,
        pc=batch.pc,
        kind=batch.kind,
        addr=batch.addr,
        partial=batch.partial,
        syscall=batch.syscall,
    )


def load_npz(path: PathLike) -> TraceBatch:
    """Read a batch from the native ``.npz`` format."""
    with np.load(path) as data:
        try:
            return TraceBatch(
                pc=data["pc"],
                kind=data["kind"],
                addr=data["addr"],
                partial=data["partial"],
                syscall=data["syscall"],
            )
        except KeyError as exc:
            raise TraceError(f"trace file {path} is missing column {exc}") from exc


def export_din(path_or_file: Union[PathLike, io.TextIOBase],
               batch: TraceBatch) -> int:
    """Write a batch as dinero ``din`` records; returns records written.

    Each instruction contributes an ifetch record, then its data access (if
    any), matching the reference order the simulator uses.
    """
    own = isinstance(path_or_file, (str, os.PathLike))
    f = open(path_or_file, "w") if own else path_or_file
    try:
        count = 0
        pcs = batch.pc
        kinds = batch.kind
        addrs = batch.addr
        for i in range(len(batch)):
            f.write(f"{DIN_IFETCH} {int(pcs[i]) * WORD_BYTES:x}\n")
            count += 1
            kind = kinds[i]
            if kind != KIND_NONE:
                label = DIN_WRITE if kind == KIND_STORE else DIN_READ
                f.write(f"{label} {int(addrs[i]) * WORD_BYTES:x}\n")
                count += 1
        return count
    finally:
        if own:
            f.close()


def import_din(path_or_file: Union[PathLike, io.TextIOBase]) -> TraceBatch:
    """Read a din file back into a batch.

    Data records must follow the ifetch of the instruction that issued them
    (the order :func:`export_din` writes).  A data record with no preceding
    ifetch is an error; two data records after one ifetch are attributed to
    synthetic one-instruction fetches to avoid silently dropping references.
    """
    own = isinstance(path_or_file, (str, os.PathLike))
    f = open(path_or_file, "r") if own else path_or_file
    try:
        pcs: List[int] = []
        kinds: List[int] = []
        addrs: List[int] = []
        for line_no, line in enumerate(f, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 2:
                raise TraceError(f"malformed din record at line {line_no}: {line!r}")
            try:
                label = int(parts[0])
                byte_addr = int(parts[1], 16)
            except ValueError as exc:
                raise TraceError(
                    f"malformed din record at line {line_no}: {line!r}"
                ) from exc
            word_addr = byte_addr // WORD_BYTES
            if label == DIN_IFETCH:
                pcs.append(word_addr)
                kinds.append(KIND_NONE)
                addrs.append(0)
            elif label in (DIN_READ, DIN_WRITE):
                if not pcs:
                    raise TraceError(
                        f"data record before any ifetch at line {line_no}"
                    )
                if kinds[-1] != KIND_NONE:
                    # A second data access: synthesize a repeat ifetch.
                    pcs.append(pcs[-1])
                    kinds.append(KIND_NONE)
                    addrs.append(0)
                kinds[-1] = KIND_STORE if label == DIN_WRITE else KIND_LOAD
                addrs[-1] = word_addr
            else:
                raise TraceError(f"unknown din label {label} at line {line_no}")
        n = len(pcs)
        return TraceBatch(
            pc=np.asarray(pcs, dtype=np.int64),
            kind=np.asarray(kinds, dtype=np.uint8),
            addr=np.asarray(addrs, dtype=np.int64),
            partial=np.zeros(n, dtype=bool),
            syscall=np.zeros(n, dtype=bool),
        )
    finally:
        if own:
            f.close()
