"""Trace file I/O.

Two formats are supported:

* ``.npz`` — the native columnar format: fast, compact, lossless.
* ``din``  — the classic dinero ASCII format (one ``<label> <hex-addr>`` pair
  per reference; label 0 = data read, 1 = data write, 2 = instruction fetch),
  provided for interoperability with other cache simulators.  Addresses in din
  files are byte addresses, as dinero expects; metadata that dinero cannot
  carry (partial-store and system-call flags) is dropped on export and absent
  on import.

Corrupt input never becomes a silent wrong simulation:
:class:`~repro.errors.TraceError` carries the 1-based line number and the
offending text, and :func:`import_din` offers an opt-in ``errors="skip"``
mode that drops malformed records and counts them in a
:class:`DinParseReport` instead of aborting a long import.
"""

from __future__ import annotations

import io
import os
import zipfile
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.errors import TraceError
from repro.params import WORD_BYTES
from repro.trace.record import KIND_LOAD, KIND_NONE, KIND_STORE, TraceBatch

DIN_READ = 0
DIN_WRITE = 1
DIN_IFETCH = 2

PathLike = Union[str, os.PathLike]

_NPZ_COLUMNS = ("pc", "kind", "addr", "partial", "syscall")


@dataclass
class DinParseReport:
    """What ``import_din(..., errors="skip")`` dropped.

    Attributes:
        skipped: number of malformed records dropped.
        lines: up to ``max_lines`` ``(line_no, text)`` samples of the drops.
    """

    skipped: int = 0
    max_lines: int = 20
    lines: List[Tuple[int, str]] = field(default_factory=list)

    def record(self, line_no: int, text: str) -> None:
        self.skipped += 1
        if len(self.lines) < self.max_lines:
            self.lines.append((line_no, text))


def save_npz(path: PathLike, batch: TraceBatch) -> None:
    """Write a batch to the native ``.npz`` format."""
    np.savez_compressed(
        path,
        pc=batch.pc,
        kind=batch.kind,
        addr=batch.addr,
        partial=batch.partial,
        syscall=batch.syscall,
    )


def load_npz(path: PathLike) -> TraceBatch:
    """Read a batch from the native ``.npz`` format.

    Every way the file can be wrong — unreadable, not an npz archive,
    missing columns, mismatched column lengths, invalid records — raises
    :class:`~repro.errors.TraceError`.
    """
    try:
        data = np.load(path)
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise TraceError(
            f"trace file {path} is unreadable or not an npz archive: {exc}"
        ) from exc
    with data:
        missing = [c for c in _NPZ_COLUMNS if c not in data.files]
        if missing:
            raise TraceError(
                f"trace file {path} is missing column(s) "
                f"{', '.join(missing)}"
            )
        try:
            batch = TraceBatch(
                pc=data["pc"],
                kind=data["kind"],
                addr=data["addr"],
                partial=data["partial"],
                syscall=data["syscall"],
            )
        except (TraceError, ValueError) as exc:
            raise TraceError(f"trace file {path} is corrupt: {exc}") from exc
    batch.validate()
    return batch


def export_din(path_or_file: Union[PathLike, io.TextIOBase],
               batch: TraceBatch) -> int:
    """Write a batch as dinero ``din`` records; returns records written.

    Each instruction contributes an ifetch record, then its data access (if
    any), matching the reference order the simulator uses.
    """
    own = isinstance(path_or_file, (str, os.PathLike))
    f = open(path_or_file, "w") if own else path_or_file
    try:
        count = 0
        pcs = batch.pc
        kinds = batch.kind
        addrs = batch.addr
        for i in range(len(batch)):
            f.write(f"{DIN_IFETCH} {int(pcs[i]) * WORD_BYTES:x}\n")
            count += 1
            kind = kinds[i]
            if kind != KIND_NONE:
                label = DIN_WRITE if kind == KIND_STORE else DIN_READ
                f.write(f"{label} {int(addrs[i]) * WORD_BYTES:x}\n")
                count += 1
        return count
    finally:
        if own:
            f.close()


def _parse_din_record(line_no: int, line: str) -> Tuple[int, int]:
    """Parse one din record into ``(label, byte_addr)`` or raise TraceError."""
    parts = line.split()
    if len(parts) != 2:
        raise TraceError(f"malformed din record at line {line_no}: {line!r}")
    try:
        label = int(parts[0])
        byte_addr = int(parts[1], 16)
    except ValueError as exc:
        raise TraceError(
            f"malformed din record at line {line_no}: {line!r}"
        ) from exc
    if byte_addr < 0:
        # int(x, 16) happily parses "-1a"; dinero addresses are unsigned.
        raise TraceError(
            f"negative address at line {line_no}: {line!r}"
        )
    if label not in (DIN_READ, DIN_WRITE, DIN_IFETCH):
        raise TraceError(
            f"unknown din label {label} at line {line_no}: {line!r}"
        )
    return label, byte_addr


def import_din(path_or_file: Union[PathLike, io.TextIOBase],
               errors: str = "strict",
               report: Optional[DinParseReport] = None) -> TraceBatch:
    """Read a din file back into a batch.

    Data records must follow the ifetch of the instruction that issued them
    (the order :func:`export_din` writes).  A data record with no preceding
    ifetch is an error; two data records after one ifetch are attributed to
    synthetic one-instruction fetches to avoid silently dropping references.

    Args:
        path_or_file: file path or open text stream.
        errors: ``"strict"`` (default) raises :class:`TraceError` with the
            1-based line number and offending text; ``"skip"`` drops
            malformed records and counts them.
        report: optional :class:`DinParseReport` that collects the skipped
            line numbers/text (skip mode only).
    """
    if errors not in ("strict", "skip"):
        raise TraceError(f"unknown errors mode {errors!r}")
    own = isinstance(path_or_file, (str, os.PathLike))
    f = open(path_or_file, "r") if own else path_or_file
    try:
        pcs: List[int] = []
        kinds: List[int] = []
        addrs: List[int] = []
        for line_no, line in enumerate(f, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                label, byte_addr = _parse_din_record(line_no, line)
                if label != DIN_IFETCH and not pcs:
                    raise TraceError(
                        f"data record before any ifetch at line {line_no}: "
                        f"{line!r}"
                    )
            except TraceError:
                if errors == "strict":
                    raise
                if report is not None:
                    report.record(line_no, line)
                continue
            word_addr = byte_addr // WORD_BYTES
            if label == DIN_IFETCH:
                pcs.append(word_addr)
                kinds.append(KIND_NONE)
                addrs.append(0)
            else:
                if kinds[-1] != KIND_NONE:
                    # A second data access: synthesize a repeat ifetch.
                    pcs.append(pcs[-1])
                    kinds.append(KIND_NONE)
                    addrs.append(0)
                kinds[-1] = KIND_STORE if label == DIN_WRITE else KIND_LOAD
                addrs[-1] = word_addr
        n = len(pcs)
        return TraceBatch(
            pc=np.asarray(pcs, dtype=np.int64),
            kind=np.asarray(kinds, dtype=np.uint8),
            addr=np.asarray(addrs, dtype=np.int64),
            partial=np.zeros(n, dtype=bool),
            syscall=np.zeros(n, dtype=bool),
        )
    finally:
        if own:
            f.close()
