"""Locality analysis of traces.

Tools for characterizing an address trace the way the cache literature of
the period did — the instruments used to calibrate the synthetic workload
against the paper's reported behaviour, and useful on their own for anyone
replacing the synthetic suite with real traces:

* :func:`footprint` — distinct lines/pages touched.
* :func:`working_set_curve` — Denning's W(T): average distinct lines
  touched per window of T references.
* :func:`reuse_distance_sample` — LRU stack distances (the miss ratio of a
  fully-associative LRU cache of capacity C is P(distance >= C)).
* :func:`miss_ratio_curve` — miss ratio vs. cache size by direct replay
  through :class:`repro.core.cache.Cache`.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.core.cache import Cache
from repro.errors import TraceError
from repro.params import PAGE_WORDS, log2i
from repro.trace.record import KIND_NONE, TraceBatch


def data_addresses(batch: TraceBatch) -> np.ndarray:
    """The data (load/store) word addresses of a batch, in order."""
    return batch.addr[batch.kind != KIND_NONE]


def footprint(word_addrs: Iterable[int], line_words: int = 4
              ) -> Dict[str, int]:
    """Distinct lines and pages touched by a stream of word addresses."""
    addrs = np.asarray(list(word_addrs) if not isinstance(word_addrs,
                                                          np.ndarray)
                       else word_addrs, dtype=np.int64)
    if len(addrs) == 0:
        return {"references": 0, "lines": 0, "pages": 0,
                "words": 0}
    shift = log2i(line_words)
    return {
        "references": int(len(addrs)),
        "words": int(len(np.unique(addrs))),
        "lines": int(len(np.unique(addrs >> shift))),
        "pages": int(len(np.unique(addrs // PAGE_WORDS))),
    }


def working_set_curve(word_addrs: Sequence[int],
                      window_sizes: Sequence[int],
                      line_words: int = 4) -> List[Tuple[int, float]]:
    """Denning's working-set function W(T).

    For each window size T, the average number of distinct lines referenced
    per disjoint window of T references.

    Returns:
        ``[(T, mean_distinct_lines), ...]`` in input order.
    """
    addrs = np.asarray(word_addrs, dtype=np.int64)
    if len(addrs) == 0:
        raise TraceError("empty address stream")
    lines = addrs >> log2i(line_words)
    curve: List[Tuple[int, float]] = []
    for window in window_sizes:
        if window <= 0:
            raise TraceError("window sizes must be positive")
        counts = []
        for start in range(0, len(lines) - window + 1, window):
            counts.append(len(np.unique(lines[start:start + window])))
        if not counts:  # trace shorter than the window
            counts = [len(np.unique(lines))]
        curve.append((window, float(np.mean(counts))))
    return curve


def reuse_distance_sample(word_addrs: Sequence[int],
                          line_words: int = 4,
                          max_tracked: int = 1 << 16
                          ) -> Counter:
    """LRU stack distances of a line-address stream.

    Returns a :class:`collections.Counter` mapping distance -> occurrences;
    first-touch references count under the key ``-1``.  Distances beyond
    ``max_tracked`` are clamped to ``max_tracked`` (the stack is pruned at
    that depth to bound memory).

    The miss ratio of a fully-associative LRU cache of C lines is the
    fraction of references with distance >= C (plus first touches).
    """
    shift = log2i(line_words)
    stack: List[int] = []            # MRU first
    positions: Dict[int, int] = {}   # line -> index hint (rebuilt lazily)
    distances: Counter = Counter()
    for addr in word_addrs:
        line = int(addr) >> shift
        try:
            depth = stack.index(line)
        except ValueError:
            distances[-1] += 1
            stack.insert(0, line)
            if len(stack) > max_tracked:
                stack.pop()
            continue
        distances[min(depth, max_tracked)] += 1
        del stack[depth]
        stack.insert(0, line)
    positions.clear()
    return distances


def lru_miss_ratio_from_distances(distances: Counter, capacity_lines: int
                                  ) -> float:
    """Miss ratio of a fully-associative LRU cache from a distance profile."""
    total = sum(distances.values())
    if total == 0:
        return 0.0
    misses = distances[-1] + sum(
        count for distance, count in distances.items()
        if distance >= capacity_lines
    )
    return misses / total


def miss_ratio_curve(word_addrs: Sequence[int],
                     cache_sizes_words: Sequence[int],
                     line_words: int = 4,
                     ways: int = 1,
                     warmup: int = 0) -> List[Tuple[int, float]]:
    """Miss ratio vs. cache size by replay through real cache models."""
    results: List[Tuple[int, float]] = []
    shift = log2i(line_words)
    lines = [int(a) >> shift for a in word_addrs]
    for size in cache_sizes_words:
        cache = Cache(size_words=size, line_words=line_words, ways=ways)
        for i, line in enumerate(lines):
            if i == warmup:
                cache.reset_counters()
            cache.access(line)
        results.append((size, cache.miss_ratio))
    return results


def locality_report(batch: TraceBatch, line_words: int = 4) -> str:
    """A one-screen locality characterization of a trace batch."""
    from repro.analysis.tables import format_table

    data = data_addresses(batch)
    code_fp = footprint(batch.pc, line_words)
    data_fp = footprint(data, line_words) if len(data) else footprint([])
    rows = [
        ["instruction", code_fp["references"], code_fp["lines"],
         code_fp["pages"]],
        ["data", data_fp["references"], data_fp["lines"], data_fp["pages"]],
    ]
    parts = [format_table(
        ["stream", "references", "distinct lines", "distinct pages"], rows,
        title="footprint")]
    if len(data) >= 4096:
        curve = working_set_curve(data, [256, 1024, 4096],
                                  line_words=line_words)
        parts.append(format_table(
            ["window (refs)", "mean distinct lines"],
            [[t, w] for t, w in curve],
            title="data working set W(T)", precision=1))
    return "\n".join(parts)
