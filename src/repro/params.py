"""Global architectural constants and small address-arithmetic helpers.

The paper (and therefore this library) measures memory in 32-bit *words*:
``4KW`` means 4096 words = 16 KB.  All addresses handled by the simulator are
word addresses.  Virtual addresses are tagged with an 8-bit process identifier
(PID) so that distinct processes occupy distinct address spaces and caches need
not be flushed on a context switch (paper, Section 3).
"""

from __future__ import annotations

#: Bytes per machine word (MIPS, 32-bit).
WORD_BYTES = 4

#: Page size in words.  The target machine uses 4 KW (16 KB) pages; this is the
#: constraint that caps the virtually-indexed L1 caches at 4 KW (Section 5).
PAGE_WORDS = 4096

#: Number of bits in a word-granular virtual address (before the PID prefix).
VADDR_BITS = 30

#: Number of PID bits prefixed to virtual addresses (Section 2: 8 bits).
PID_BITS = 8

#: Maximum number of concurrently addressable processes.
MAX_PROCESSES = 1 << PID_BITS

#: The paper's CPU-stall contribution to CPI (loads, branches, multi-cycle
#: operations).  Fig. 4 shows the 1.238 CPI horizontal axis; 1.0 of that is
#: single-cycle issue, the remaining 0.238 is CPU stalls.
CPU_STALL_CPI = 0.238

#: Default scheduler time slice in CPU cycles (Section 3 chooses 500,000).
DEFAULT_TIME_SLICE = 500_000

#: Default multiprogramming level (Section 3 chooses eight).
DEFAULT_MULTIPROGRAMMING_LEVEL = 8


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2i(value: int) -> int:
    """Integer log base two of a power-of-two ``value``.

    Raises:
        ValueError: if ``value`` is not a positive power of two.
    """
    if not is_power_of_two(value):
        raise ValueError(f"expected a positive power of two, got {value}")
    return value.bit_length() - 1


def page_number(word_addr: int) -> int:
    """Page number of a word address."""
    return word_addr // PAGE_WORDS


def page_offset(word_addr: int) -> int:
    """Offset of a word address within its page."""
    return word_addr % PAGE_WORDS


def words_to_kw(words: int) -> str:
    """Render a size in words the way the paper does, e.g. ``4096 -> '4KW'``."""
    if words % 1024 == 0:
        return f"{words // 1024}KW"
    return f"{words}W"
