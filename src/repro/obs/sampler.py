"""Periodic per-interval sampling: a CPI / miss-rate time series of a run.

End-of-run :class:`~repro.core.stats.SimStats` aggregates answer *how much*;
they cannot answer *when*.  The sampler turns a run into a time series: every
``interval_cycles`` of simulated time it emits one ``sample`` record with the
**deltas** of the interval — instructions, cycles, per-interval CPI, L1-I/L1-D
miss rates, and write-buffer stall share — which is what ``repro-obs
timeline`` plots and what a Figure-4-style breakdown over time is built from.

The scheduler drives it at slice granularity (``tick`` once per slice), so
the sampling cadence is ``max(interval_cycles, time_slice)``; warmup's
``clear_stats`` (counters rewind) re-baselines silently instead of emitting
a negative-delta sample.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.errors import ObsError
from repro.obs import runtime

#: Default sampling interval, simulated cycles (the paper's time slice).
DEFAULT_INTERVAL_CYCLES = 500_000

#: Stats fields whose interval deltas each sample carries.
_DELTA_FIELDS = ("instructions", "loads", "stores", "l1i_misses",
                 "l1d_read_misses", "l1d_write_misses", "stall_wb",
                 "l2i_misses", "l2d_misses")


class Sampler:
    """Emits one ``sample`` record per elapsed interval of simulated time."""

    def __init__(self, interval_cycles: int = DEFAULT_INTERVAL_CYCLES):
        if interval_cycles < 1:
            raise ObsError("sample interval must be >= 1 cycle")
        self.interval_cycles = interval_cycles
        # id(memsys) -> {"now": cycle, field: value, ...}; one simulation at
        # a time is the common case, the dict keeps concurrent tests honest.
        self._baselines: Dict[int, Dict[str, int]] = {}
        self.samples_emitted = 0

    def _baseline(self, memsys) -> Dict[str, int]:
        base = {"now": memsys.now}
        st = memsys.stats
        for name in _DELTA_FIELDS:
            base[name] = getattr(st, name)
        if memsys.energy is not None:
            base["energy_total_fj"] = st.energy_total_fj
        return base

    def tick(self, memsys) -> None:
        """Called at slice boundaries; emits when an interval has elapsed."""
        key = id(memsys)
        base = self._baselines.get(key)
        if base is None:
            self._baselines[key] = self._baseline(memsys)
            return
        elapsed = memsys.now - base["now"]
        if elapsed < self.interval_cycles:
            return
        st = memsys.stats
        deltas = {name: getattr(st, name) - base[name]
                  for name in _DELTA_FIELDS}
        if deltas["instructions"] < 0:
            # Warmup cleared the counters: re-baseline, emit nothing.
            self._baselines[key] = self._baseline(memsys)
            return
        instr = deltas["instructions"] or 1
        loads = deltas["loads"] or 1
        record: Dict[str, Any] = {
            "cyc": memsys.now,
            "d_cycles": elapsed,
            "d_instr": deltas["instructions"],
            "cpi": round(elapsed / instr, 4),
            "l1i_mr": round(deltas["l1i_misses"] / instr, 5),
            "l1d_mr": round(deltas["l1d_read_misses"] / loads, 5),
            "wb_stall_frac": round(deltas["stall_wb"] / elapsed, 5)
            if elapsed else 0.0,
            "l2_misses": deltas["l2i_misses"] + deltas["l2d_misses"],
        }
        if memsys.energy is not None and "energy_total_fj" in base:
            # The engines fold energy once per slice epilogue, so at a tick
            # the fields are exactly as fresh as the counters they mirror.
            d_fj = st.energy_total_fj - base["energy_total_fj"]
            record["d_energy_pj"] = round(d_fj / 1000.0, 1)
            record["epi_pj"] = round(d_fj / instr / 1000.0, 4)
        if runtime.enabled:
            runtime.tracer.emit("sample", **record)
        self.samples_emitted += 1
        self._baselines[key] = self._baseline(memsys)

    def forget(self, memsys) -> None:
        """Drop a simulation's baseline (end of run)."""
        self._baselines.pop(id(memsys), None)


def active_sampler() -> Optional[Sampler]:
    """The sampler installed by :func:`repro.obs.enable`, if any."""
    return runtime.sampler
