"""Chrome trace-event export: ``chrome://tracing`` / Perfetto-loadable JSON.

Span records already carry the Chrome convention (``ts``/``dur`` in
microseconds, ``pid``/``tid``), so each becomes one complete (``"ph": "X"``)
event.  ``sample`` records become counter (``"ph": "C"``) events so the CPI
and miss-rate time series render as tracks under the spans.  Simulated-cycle
events have no wall-clock timestamp and are therefore summarized into the
trace's metadata rather than plotted.

The output is the JSON *object* format (``{"traceEvents": [...]}``), which
both the legacy viewer and Perfetto accept.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.tracing import read_events

#: Synthetic pid/tid for counter tracks derived from simulated time.
_SAMPLE_PID = 0

#: Fields required of every exported trace event (asserted by tests/CI).
REQUIRED_FIELDS = ("name", "ph", "ts", "pid", "tid")


def span_to_event(record: Dict[str, Any]) -> Dict[str, Any]:
    """One ``span`` record -> one complete ("X") trace event."""
    event: Dict[str, Any] = {
        "name": record.get("name", "span"),
        "cat": record.get("cat", "obs"),
        "ph": "X",
        "ts": int(record.get("ts", 0)),
        "dur": int(record.get("dur", 0)),
        "pid": int(record.get("pid", 0)),
        "tid": int(record.get("tid", 0)),
    }
    args = dict(record.get("args") or {})
    if record.get("trace"):
        args["trace"] = record["trace"]
    if args:
        event["args"] = args
    return event


def sample_to_counters(record: Dict[str, Any],
                       ts_us: int) -> List[Dict[str, Any]]:
    """One ``sample`` record -> counter ("C") events at a synthetic ts."""
    counters = []
    for name, key in (("cpi", "cpi"), ("l1i_miss_rate", "l1i_mr"),
                      ("l1d_miss_rate", "l1d_mr")):
        if key in record:
            counters.append({
                "name": name,
                "cat": "sim",
                "ph": "C",
                "ts": ts_us,
                "pid": _SAMPLE_PID,
                "tid": 0,
                "args": {name: record[key]},
            })
    return counters


def to_chrome_trace(events: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Convert loaded JSONL records to the Chrome trace-event document."""
    trace_events: List[Dict[str, Any]] = []
    sim_event_counts: Dict[str, int] = {}
    first_span_ts: Optional[int] = None
    for record in events:
        ev = record.get("ev")
        if ev == "span":
            event = span_to_event(record)
            trace_events.append(event)
            if first_span_ts is None or event["ts"] < first_span_ts:
                first_span_ts = event["ts"]
        elif ev != "meta":
            sim_event_counts[ev] = sim_event_counts.get(ev, 0) + 1
    # Samples ride simulated time; anchor their counter tracks at the first
    # span's wall-clock and advance by simulated cycles (1 cycle -> 1 µs) so
    # the series keeps its shape next to the spans.
    base = first_span_ts if first_span_ts is not None else 0
    for record in events:
        if record.get("ev") == "sample":
            trace_events.extend(
                sample_to_counters(record, base + int(record.get("cyc", 0))))
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro-obs",
            "sim_event_counts": sim_event_counts,
        },
    }


def export_chrome_trace(jsonl_path, out_path) -> Dict[str, Any]:
    """Read a JSONL event log and write the Chrome trace next to it."""
    from repro.robust.atomic import atomic_write_text

    document = to_chrome_trace(read_events(jsonl_path))
    atomic_write_text(out_path, json.dumps(document, indent=1) + "\n")
    return document
