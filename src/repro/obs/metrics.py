"""Process-wide metrics: counters, gauges, histograms with labeled children.

One :class:`Registry` holds every metric of a process (or of one subsystem —
the serve and farm layers each own one so independent servers in the same
test process never double-count).  Everything is thread-safe, and a registry
is **mergeable**: :meth:`Registry.snapshot` renders the whole registry as a
plain JSON-safe dict, and :meth:`Registry.merge` folds such a snapshot back
into live metrics — that is how forked farm workers ship their metrics to
the parent over the existing result channel (the snapshot rides in the
worker's result dict; see :func:`repro.farm.points.execute_point`).

Merge semantics:

* counters and histograms **add** (events in the child happened),
* gauges take the **max** (a gauge is a level, not a flow; max is the only
  fold that is order-independent across workers).

Label model: a metric is declared with a tuple of label *names*; a labeled
child is addressed by a tuple of label *values* (``counter.labels("cached")``)
and unlabeled metrics use the empty tuple.  Snapshot keys encode the value
tuple as a JSON array string so snapshots stay pure JSON.
"""

from __future__ import annotations

import json
import math
import re
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ObsError

#: Default histogram bucket upper bounds (seconds-flavoured; callers timing
#: sweep points and HTTP requests share these).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0)


def _label_key(values: Tuple[str, ...]) -> str:
    """Encode a label-value tuple as a deterministic JSON-safe string."""
    return json.dumps(list(values))


def _parse_label_key(key: str) -> Tuple[str, ...]:
    return tuple(json.loads(key))


#: The quantile points reported by snapshot(quantiles=True) and the fleet
#: plane: median, tail, and far tail.
QUANTILE_POINTS: Tuple[float, ...] = (0.5, 0.95, 0.99)


def quantile_from_buckets(bounds: Sequence[float], counts: Sequence[int],
                          q: float) -> Optional[float]:
    """Coarse quantile estimate by linear interpolation within buckets.

    ``counts`` are **per-bucket** (non-cumulative) tallies with one extra
    trailing slot for the +Inf overflow, exactly the vector a
    :class:`_HistogramChild` keeps.  Follows the Prometheus
    ``histogram_quantile`` conventions: the first bucket's lower edge is 0
    when its bound is positive, and a rank landing in the overflow bucket
    answers the largest finite bound — nothing finer is known up there.

    Returns ``None`` for an empty histogram (never NaN).
    """
    if not 0.0 <= q <= 1.0:
        raise ObsError(f"quantile must be in [0, 1], got {q!r}")
    total = sum(counts)
    if total == 0:
        return None
    rank = q * total
    cumulative = 0
    largest_finite = max((b for b in bounds if math.isfinite(b)),
                         default=0.0)
    for i, bound in enumerate(bounds):
        previous = cumulative
        cumulative += counts[i]
        if cumulative >= rank and counts[i]:
            if not math.isfinite(bound):
                return largest_finite
            lower = bounds[i - 1] if i > 0 else min(0.0, bound)
            if not math.isfinite(lower):
                lower = min(0.0, bound)
            fraction = (rank - previous) / counts[i]
            return lower + (bound - lower) * fraction
    return largest_finite


def histogram_quantiles(entry: Dict[str, Any],
                        qs: Sequence[float] = QUANTILE_POINTS
                        ) -> Dict[str, Optional[float]]:
    """Quantiles over **all** children of one histogram snapshot entry
    (the fleet collector's view: children may come from many nodes)."""
    bounds = [float(b) for b in entry.get("buckets", ())]
    summed = [0] * (len(bounds) + 1)
    for child in entry.get("values", {}).values():
        for i, c in enumerate(child.get("counts", ())):
            if i < len(summed):
                summed[i] += int(c)
    return {f"p{round(q * 100):d}": quantile_from_buckets(bounds, summed, q)
            for q in qs}


class _Metric:
    """Shared plumbing: name, help, label names, per-child storage."""

    kind = "metric"

    def __init__(self, name: str, help: str = "",
                 labels: Sequence[str] = ()):
        self.name = name
        self.help = help
        self.label_names: Tuple[str, ...] = tuple(labels)
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], Any] = {}

    def _coerce(self, values: Tuple[Any, ...]) -> Tuple[str, ...]:
        if len(values) != len(self.label_names):
            raise ObsError(
                f"metric {self.name!r} takes {len(self.label_names)} "
                f"label value(s), got {len(values)}")
        return tuple(str(v) for v in values)


class Counter(_Metric):
    """A monotonically increasing count."""

    kind = "counter"

    def labels(self, *values: Any) -> "_CounterChild":
        key = self._coerce(values)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = _CounterChild(self._lock)
            return child

    def inc(self, amount: int = 1) -> None:
        """Increment the unlabeled child."""
        self.labels().inc(amount)

    @property
    def value(self) -> int:
        """Total across every child."""
        with self._lock:
            return sum(c._value for c in self._children.values())

    def value_of(self, *values: Any) -> int:
        key = self._coerce(values)
        with self._lock:
            child = self._children.get(key)
            return child._value if child is not None else 0


class _CounterChild:
    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ObsError("counters only go up; use a gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge(_Metric):
    """A value that can go up and down (queue depth, in-flight work)."""

    kind = "gauge"

    def labels(self, *values: Any) -> "_GaugeChild":
        key = self._coerce(values)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = _GaugeChild(self._lock)
            return child

    def set(self, value: float) -> None:
        self.labels().set(value)

    def inc(self, amount: float = 1) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1) -> None:
        self.labels().inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return sum(c._value for c in self._children.values())


class _GaugeChild:
    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Histogram(_Metric):
    """Distribution over fixed bucket boundaries (upper bounds).

    ``observe(v)`` increments the first bucket whose bound is >= v, plus an
    implicit +Inf overflow bucket, and accumulates sum/count — enough for
    rates, means and coarse quantiles without storing samples.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 labels: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(name, help, labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(bounds):
            raise ObsError(
                f"histogram {name!r} buckets must be non-empty and sorted")
        self.buckets = bounds

    def labels(self, *values: Any) -> "_HistogramChild":
        key = self._coerce(values)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = _HistogramChild(
                    self._lock, self.buckets)
            return child

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    @property
    def count(self) -> int:
        with self._lock:
            return sum(c._count for c in self._children.values())

    @property
    def sum(self) -> float:
        with self._lock:
            return sum(c._sum for c in self._children.values())

    def quantile(self, q: float) -> Optional[float]:
        """Coarse quantile across every child (``None`` when empty)."""
        with self._lock:
            summed = [0] * (len(self.buckets) + 1)
            for child in self._children.values():
                for i, c in enumerate(child._counts):
                    summed[i] += c
        return quantile_from_buckets(self.buckets, summed, q)

    def quantiles(self, qs: Sequence[float] = QUANTILE_POINTS
                  ) -> Dict[str, Optional[float]]:
        return {f"p{round(q * 100):d}": self.quantile(q) for q in qs}


class _HistogramChild:
    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "_count")

    def __init__(self, lock: threading.Lock, bounds: Tuple[float, ...]):
        self._lock = lock
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last = +Inf overflow
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        slot = len(self._bounds)
        for i, bound in enumerate(self._bounds):
            if value <= bound:
                slot = i
                break
        with self._lock:
            self._counts[slot] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> Optional[float]:
        """Coarse quantile for this child alone (``None`` when empty)."""
        with self._lock:
            counts = list(self._counts)
        return quantile_from_buckets(self._bounds, counts, q)


class Registry:
    """A named collection of metrics with snapshot/merge.

    Declaring a metric is idempotent: asking again with the same name (and a
    compatible type) returns the existing object, so modules can declare
    their metrics at call sites without coordinating.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    # ------------------------------------------------------------ declaration

    def _declare(self, cls, name: str, help: str, labels: Sequence[str],
                 **kwargs) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ObsError(
                        f"metric {name!r} already declared as "
                        f"{existing.kind}, not {cls.kind}")
                if tuple(labels) != existing.label_names:
                    raise ObsError(
                        f"metric {name!r} already declared with labels "
                        f"{existing.label_names}")
                return existing
            metric = cls(name, help, labels, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> Counter:
        return self._declare(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = ()) -> Gauge:
        return self._declare(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._declare(Histogram, name, help, labels, buckets=buckets)

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    # --------------------------------------------------------- snapshot/merge

    def snapshot(self, quantiles: bool = False) -> Dict[str, Any]:
        """JSON-safe dump of every metric (the merge/export format).

        ``quantiles=True`` adds a derived ``"quantiles"`` key (p50/p95/p99
        per child) to histogram entries.  It is **opt-in** so the default
        snapshot — the wire format forked workers ship and the legacy
        ``/metrics`` JSON embeds — keeps its exact historical shape;
        :meth:`merge` ignores the derived key either way.
        """
        out: Dict[str, Any] = {}
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            entry: Dict[str, Any] = {
                "type": metric.kind,
                "help": metric.help,
                "labels": list(metric.label_names),
            }
            with metric._lock:
                if metric.kind == "histogram":
                    entry["buckets"] = list(metric.buckets)
                    entry["values"] = {
                        _label_key(key): {
                            "counts": list(child._counts),
                            "sum": child._sum,
                            "count": child._count,
                        }
                        for key, child in metric._children.items()
                    }
                else:
                    entry["values"] = {
                        _label_key(key): child._value
                        for key, child in metric._children.items()
                    }
            if quantiles and metric.kind == "histogram":
                entry["quantiles"] = {
                    key: {
                        point: quantile_from_buckets(
                            entry["buckets"], value["counts"], q)
                        for point, q in zip(("p50", "p95", "p99"),
                                            QUANTILE_POINTS)
                    }
                    for key, value in entry["values"].items()
                }
            out[metric.name] = entry
        return out

    def prometheus(self) -> str:
        """This registry in Prometheus text exposition format."""
        return render_prometheus(self.snapshot())

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` into this registry's live metrics.

        Counters/histograms add, gauges take the max; unknown metrics are
        created on the fly so a parent needs no advance knowledge of what
        its workers counted.  Raises :class:`~repro.errors.ObsError` on a
        type or bucket mismatch.
        """
        for name, entry in snapshot.items():
            kind = entry.get("type")
            labels = tuple(entry.get("labels", ()))
            help_text = entry.get("help", "")
            if kind == "counter":
                metric = self.counter(name, help_text, labels)
                for key, value in entry.get("values", {}).items():
                    metric.labels(*_parse_label_key(key)).inc(int(value))
            elif kind == "gauge":
                metric = self.gauge(name, help_text, labels)
                for key, value in entry.get("values", {}).items():
                    child = metric.labels(*_parse_label_key(key))
                    with child._lock:
                        child._value = max(child._value, float(value))
            elif kind == "histogram":
                buckets = tuple(entry.get("buckets", DEFAULT_BUCKETS))
                metric = self.histogram(name, help_text, labels,
                                        buckets=buckets)
                if buckets != metric.buckets:
                    raise ObsError(
                        f"histogram {name!r} bucket mismatch on merge")
                for key, value in entry.get("values", {}).items():
                    child = metric.labels(*_parse_label_key(key))
                    counts = [int(c) for c in value["counts"]]
                    if len(counts) != len(child._counts):
                        raise ObsError(
                            f"histogram {name!r} count-vector mismatch")
                    with child._lock:
                        for i, c in enumerate(counts):
                            child._counts[i] += c
                        child._sum += float(value["sum"])
                        child._count += int(value["count"])
            else:
                raise ObsError(
                    f"snapshot metric {name!r} has unknown type {kind!r}")

    def reset(self) -> None:
        """Drop every metric (tests and fresh CLI processes)."""
        with self._lock:
            self._metrics.clear()


def merge_snapshots(*snapshots: Dict[str, Any]) -> Dict[str, Any]:
    """Merge snapshot dicts into one (same fold rules as Registry.merge)."""
    merged = Registry()
    for snap in snapshots:
        if snap:
            merged.merge(snap)
    return merged.snapshot()


# ------------------------------------------------------- Prometheus exposition

#: The Content-Type a Prometheus scraper expects for text exposition.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_PROM_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_PROM_LABEL_OK = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _prom_name(name: str) -> str:
    """Force a metric or label name into the Prometheus grammar."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _prom_label_name(name: str) -> str:
    cleaned = re.sub(r"[^a-zA-Z0-9_]", "_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _prom_escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _prom_escape_label(text: str) -> str:
    return (text.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _prom_number(value: Any) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _prom_bound(bound: float) -> str:
    return "+Inf" if math.isinf(bound) and bound > 0 else _prom_number(bound)


def _prom_labels(names: Sequence[str], values: Sequence[str],
                 extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = [(_prom_label_name(n), v) for n, v in zip(names, values)]
    pairs.extend(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{name}="{_prom_escape_label(value)}"'
                     for name, value in pairs)
    return "{" + inner + "}"


def render_prometheus(snapshot: Dict[str, Any]) -> str:
    """Render a registry :meth:`~Registry.snapshot` as Prometheus text
    exposition (version 0.0.4).

    * counters/gauges: one sample per labeled child, ``# HELP``/``# TYPE``
      headers per family;
    * histograms: cumulative ``_bucket`` samples with ``le`` labels, the
      implicit ``+Inf`` bucket emitted **exactly once** even when the
      declared bounds already end in infinity, plus ``_sum``/``_count``;
    * an *empty* unlabeled histogram still renders a complete, valid
      series (every bucket 0, ``_count`` 0 — never NaN), so a scraper sees
      the family exist before the first observation;
    * metric and label names outside the Prometheus grammar are sanitized,
      help text and label values escaped.

    Families render in sorted-name order, children in sorted label order,
    so the exposition is deterministic — the property the fleet tests and
    the bucket-cumulativity validator in :mod:`repro.fleet.prom` rely on.
    """
    lines: List[str] = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = entry.get("type")
        if kind not in ("counter", "gauge", "histogram"):
            raise ObsError(
                f"snapshot metric {name!r} has unknown type {kind!r}")
        pname = _prom_name(name)
        label_names = [str(n) for n in entry.get("labels", ())]
        help_text = entry.get("help", "")
        if help_text:
            lines.append(f"# HELP {pname} {_prom_escape_help(help_text)}")
        lines.append(f"# TYPE {pname} {kind}")
        values = entry.get("values", {})
        children = sorted(values.items())
        if kind in ("counter", "gauge"):
            for key, value in children:
                labels = _prom_labels(label_names, _parse_label_key(key))
                lines.append(f"{pname}{labels} {_prom_number(value)}")
            continue
        bounds = [float(b) for b in entry.get("buckets", ())]
        if not children and not label_names:
            # Declared but never observed: render the zero series.
            children = [(_label_key(()), {
                "counts": [0] * (len(bounds) + 1), "sum": 0.0, "count": 0})]
        for key, value in children:
            label_values = _parse_label_key(key)
            counts = [int(c) for c in value.get("counts", ())]
            total = int(value.get("count", 0))
            cumulative = 0
            for i, bound in enumerate(bounds):
                if math.isinf(bound) and bound > 0:
                    continue  # folded into the single +Inf line below
                cumulative += counts[i] if i < len(counts) else 0
                labels = _prom_labels(label_names, label_values,
                                      extra=(("le", _prom_bound(bound)),))
                lines.append(f"{pname}_bucket{labels} {cumulative}")
            labels = _prom_labels(label_names, label_values,
                                  extra=(("le", "+Inf"),))
            lines.append(f"{pname}_bucket{labels} {total}")
            plain = _prom_labels(label_names, label_values)
            lines.append(f"{pname}_sum{plain} "
                         f"{_prom_number(value.get('sum', 0.0))}")
            lines.append(f"{pname}_count{plain} {total}")
    return "\n".join(lines) + "\n" if lines else ""


#: The process-global registry: core/farm instrumentation that has no
#: subsystem registry of its own lands here, and forked workers snapshot it.
GLOBAL = Registry()


def global_registry() -> Registry:
    """The process-global :class:`Registry`."""
    return GLOBAL
