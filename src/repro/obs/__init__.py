"""repro.obs — unified tracing, metrics, and profiling.

One subsystem, three concerns, one schema across simulator, farm, and serve:

* **Metrics** (:mod:`repro.obs.metrics`): thread-safe counters/gauges/
  histograms with labeled children in mergeable registries; forked farm
  workers snapshot theirs and the parent folds them back in over the
  existing result channel.
* **Event tracing** (:mod:`repro.obs.tracing`): opt-in instrumentation
  points in the simulator's miss/stall paths emit compact JSONL records,
  gated behind :data:`repro.obs.runtime.enabled` so the disabled path costs
  one attribute lookup; a periodic sampler adds a CPI/miss-rate time series.
* **Spans with trace IDs** (:class:`~repro.obs.tracing.Trace`): a serve
  request's ID flows through admission queue, farm task, worker and
  simulation, and the spans export in Chrome trace-event format
  (:mod:`repro.obs.chrome`).

Usage::

    import repro.obs as obs

    obs.enable("run.jsonl", sample_interval=100_000)
    stats = simulate(config, profiles)
    obs.disable()                       # flush + close
    # then: repro-obs summarize run.jsonl / timeline / export / diff

Environment: setting ``REPRO_OBS_TRACE=<path>`` makes
:func:`enable_from_env` (called by the CLIs and by farm workers) switch
tracing on without code changes; ``REPRO_OBS_SAMPLE_INTERVAL`` overrides the
sampling cadence.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.errors import ObsError
from repro.obs import runtime
from repro.obs.chrome import export_chrome_trace, to_chrome_trace
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    PROMETHEUS_CONTENT_TYPE,
    Counter,
    Gauge,
    Histogram,
    Registry,
    global_registry,
    histogram_quantiles,
    merge_snapshots,
    quantile_from_buckets,
    render_prometheus,
)
from repro.obs.sampler import DEFAULT_INTERVAL_CYCLES, Sampler
from repro.obs.tracing import (
    Trace,
    Tracer,
    activate_trace,
    current_trace,
    new_trace_id,
    read_events,
    span,
)

#: Environment variable naming the JSONL sink (enables tracing when set).
TRACE_ENV = "REPRO_OBS_TRACE"
#: Environment variable overriding the sampling interval (cycles; 0 = off).
SAMPLE_INTERVAL_ENV = "REPRO_OBS_SAMPLE_INTERVAL"


def is_enabled() -> bool:
    """Whether event tracing is currently on."""
    return runtime.enabled


def enable(trace_path, sample_interval: Optional[int] =
           DEFAULT_INTERVAL_CYCLES, buffer_records: int = 1024) -> Tracer:
    """Switch event tracing on, writing JSONL records to ``trace_path``.

    Args:
        trace_path: the event-log file (appended; parent dirs created).
        sample_interval: simulated cycles between CPI/miss-rate samples;
            ``None`` or 0 disables the sampler.
        buffer_records: tracer buffer size (records between flushes).

    Idempotent-hostile on purpose: enabling twice without :func:`disable`
    raises, because two tracers on one path would interleave buffers.
    """
    if runtime.enabled:
        raise ObsError("tracing already enabled; call obs.disable() first")
    tracer = Tracer(trace_path, buffer_records=buffer_records)
    runtime.tracer = tracer
    runtime.sampler = (Sampler(sample_interval)
                       if sample_interval else None)
    runtime.enabled = True
    return tracer


def disable() -> None:
    """Switch tracing off, flushing and closing the sink.  Idempotent."""
    runtime.enabled = False
    tracer, runtime.tracer = runtime.tracer, None
    runtime.sampler = None
    if tracer is not None:
        tracer.close()


def enable_from_env() -> bool:
    """Enable tracing if ``$REPRO_OBS_TRACE`` is set; returns whether on.

    Called by the CLIs and by :func:`repro.farm.points.execute_point` so a
    forked worker in a traced run opens its own per-process sink (the
    tracer's fork rebinding handles an inherited one).  A no-op when
    tracing is already enabled.
    """
    if runtime.enabled:
        return True
    path = os.environ.get(TRACE_ENV, "").strip()
    if not path:
        return False
    interval: Optional[int] = DEFAULT_INTERVAL_CYCLES
    raw = os.environ.get(SAMPLE_INTERVAL_ENV, "").strip()
    if raw:
        try:
            interval = int(raw)
        except ValueError as exc:
            raise ObsError(
                f"${SAMPLE_INTERVAL_ENV} must be an integer, got "
                f"{raw!r}") from exc
    enable(path, sample_interval=interval or None)
    return True


def registry() -> Registry:
    """The process-global metrics registry."""
    return global_registry()


__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_INTERVAL_CYCLES",
    "Gauge",
    "Histogram",
    "Registry",
    "SAMPLE_INTERVAL_ENV",
    "Sampler",
    "TRACE_ENV",
    "Trace",
    "Tracer",
    "activate_trace",
    "current_trace",
    "disable",
    "enable",
    "enable_from_env",
    "export_chrome_trace",
    "global_registry",
    "is_enabled",
    "merge_snapshots",
    "new_trace_id",
    "read_events",
    "registry",
    "runtime",
    "span",
    "to_chrome_trace",
]
