"""Structured event tracing: buffered JSONL sink, spans, trace IDs.

Every record is one JSON object per line with an ``ev`` discriminator (the
full schema is DESIGN.md §11).  Two timelines coexist:

* **simulated time** — miss/stall/context-switch events carry ``cyc``, the
  memory system's cycle counter;
* **wall time** — ``span`` records carry ``ts``/``dur`` in microseconds
  (epoch-based), which is exactly the Chrome trace-event convention, so the
  export in :mod:`repro.obs.chrome` is a reshaping, not a conversion.

Trace IDs: :func:`new_trace_id` mints one, :class:`Trace` collects the spans
of one logical request, and a contextvar propagates the active trace across
call depth (and ``threading.Thread``/executor hops that copy context).  A
span is recorded into the active trace *and* the global tracer when one is
enabled, so a serve request's spans are visible both in its HTTP response
and in the server's JSONL event log under the same ID.

The tracer is fork-aware: a forked worker inheriting an open tracer rebinds
to a sibling ``<stem>-<pid>`` file on first emit, so parent and child never
interleave writes into one file.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
import uuid
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import ObsError
from repro.obs import runtime

PathLike = Union[str, os.PathLike]

#: Trace format version; lands in every file's leading ``meta`` record.
TRACE_VERSION = 1


def new_trace_id() -> str:
    """A fresh 32-hex-digit trace ID."""
    return uuid.uuid4().hex


class Tracer:
    """Buffered JSONL event sink.

    Records are appended to an in-memory buffer and flushed to disk every
    ``buffer_records`` appends (and on :meth:`close`).  Thread-safe; the
    compact separators keep a fig5-size run's log in the tens of MB.
    """

    def __init__(self, path: PathLike, buffer_records: int = 1024):
        if buffer_records < 1:
            raise ObsError("buffer_records must be >= 1")
        self.path = Path(path)
        self.buffer_records = buffer_records
        self._lock = threading.Lock()
        self._buffer: List[str] = []
        self._pid = os.getpid()
        self._file = None
        self.records_emitted = 0
        self._open()
        self.emit("meta", version=TRACE_VERSION, pid=self._pid,
                  started_unix=round(time.time(), 3))

    def _open(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "a", encoding="utf-8")

    def _rebind_after_fork(self) -> None:
        """First emit in a forked child: divert to a per-pid sibling file."""
        pid = os.getpid()
        self._buffer = []        # parent's pending records are not ours
        try:
            self._file.close()   # close inherited fd without flushing
        except OSError:
            pass
        self._pid = pid
        self.path = self.path.with_name(
            f"{self.path.stem}-{pid}{self.path.suffix}")
        self._open()
        self.records_emitted = 0
        self.emit("meta", version=TRACE_VERSION, pid=pid,
                  started_unix=round(time.time(), 3), forked=True)

    def emit(self, ev: str, **fields: Any) -> None:
        """Append one record; flushes when the buffer fills."""
        record = {"ev": ev}
        record.update(fields)
        self.emit_record(record)

    def emit_record(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, separators=(",", ":"))
        with self._lock:
            if os.getpid() != self._pid:
                self._rebind_after_fork()
            self._buffer.append(line)
            self.records_emitted += 1
            if len(self._buffer) >= self.buffer_records:
                self._flush_locked()

    def _flush_locked(self) -> None:
        if self._buffer and self._file is not None:
            self._file.write("\n".join(self._buffer) + "\n")
            self._file.flush()
            self._buffer = []

    def flush(self) -> None:
        with self._lock:
            self._flush_locked()

    def close(self) -> None:
        with self._lock:
            self._flush_locked()
            if self._file is not None:
                self._file.close()
                self._file = None


# --------------------------------------------------------------------- traces


class Trace:
    """The spans of one logical request, keyed by a trace ID.

    Thread-safe: a serve request's spans are appended from the connection
    thread, an executor thread, and (via the result channel) a forked
    worker.
    """

    def __init__(self, trace_id: Optional[str] = None):
        self.trace_id = trace_id or new_trace_id()
        self._lock = threading.Lock()
        self._spans: List[Dict[str, Any]] = []

    @property
    def spans(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._spans)

    def add_record(self, record: Dict[str, Any]) -> None:
        with self._lock:
            self._spans.append(record)

    def add_span(self, name: str, start_wall: float, end_wall: float,
                 cat: str = "obs", **args: Any) -> Dict[str, Any]:
        """Record a span from explicit wall-clock endpoints (seconds).

        Used where the two ends live on different threads (queue wait);
        :func:`span` is the same-thread convenience wrapper.
        """
        record = _span_record(name, cat, self.trace_id, start_wall,
                              max(0.0, end_wall - start_wall), args)
        self.add_record(record)
        if runtime.enabled:
            runtime.tracer.emit_record(record)
        return record

    def to_dict(self) -> Dict[str, Any]:
        """The JSON shape surfaced in serve responses."""
        return {"id": self.trace_id, "spans": self.spans}


_current_trace: contextvars.ContextVar[Optional[Trace]] = \
    contextvars.ContextVar("repro_obs_trace", default=None)


def current_trace() -> Optional[Trace]:
    """The trace active in this context, or ``None``."""
    return _current_trace.get()


@contextmanager
def activate_trace(trace: Optional[Trace]):
    """Make ``trace`` the ambient trace for the duration of the block."""
    token = _current_trace.set(trace)
    try:
        yield trace
    finally:
        _current_trace.reset(token)


def _span_record(name: str, cat: str, trace_id: Optional[str],
                 start_wall: float, dur_s: float,
                 args: Dict[str, Any]) -> Dict[str, Any]:
    record: Dict[str, Any] = {
        "ev": "span",
        "name": name,
        "cat": cat,
        "ts": int(start_wall * 1e6),   # µs, Chrome convention
        "dur": int(dur_s * 1e6),
        "pid": os.getpid(),
        "tid": threading.get_ident(),
    }
    if trace_id is not None:
        record["trace"] = trace_id
    if args:
        record["args"] = args
    return record


@contextmanager
def span(name: str, cat: str = "obs", trace: Optional[Trace] = None,
         **args: Any):
    """Time a block as a span attached to the ambient (or given) trace.

    The span is recorded even when no trace is active, as long as the
    global tracer is enabled — standalone runs still get their wall-clock
    accounted.  When neither is the case the overhead is two clock reads.
    """
    active = trace if trace is not None else current_trace()
    start_wall = time.time()
    start = time.perf_counter()
    try:
        yield
    finally:
        dur_s = time.perf_counter() - start
        if active is not None:
            active.add_span(name, start_wall, start_wall + dur_s, cat=cat,
                            **args)
        elif runtime.enabled:
            runtime.tracer.emit_record(
                _span_record(name, cat, None, start_wall, dur_s, args))


# ---------------------------------------------------------------- file access


def read_events(path: PathLike) -> List[Dict[str, Any]]:
    """Load a JSONL event log; raises :class:`ObsError` on malformed lines."""
    events: List[Dict[str, Any]] = []
    try:
        with open(path, encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ObsError(
                        f"{path}:{lineno}: malformed event record: "
                        f"{exc}") from exc
                if not isinstance(record, dict) or "ev" not in record:
                    raise ObsError(
                        f"{path}:{lineno}: event record missing 'ev'")
                events.append(record)
    except OSError as exc:
        raise ObsError(f"cannot read event log {path}: {exc}") from exc
    return events
