"""``repro-obs``: inspect, plot, export, and diff observability event logs.

Usage::

    repro-obs summarize run.jsonl [--json]
    repro-obs timeline run.jsonl [--metric cpi|l1i_mr|l1d_mr|wb_stall_frac]
    repro-obs export run.jsonl --chrome-trace trace.json
    repro-obs diff before.jsonl after.jsonl
    repro-obs metrics snapshot.json [--prometheus]

``summarize`` reports event counts, span wall-clock, and the sampled CPI
range of a run; ``timeline`` draws the per-interval series with the shared
ASCII plotter; ``export`` writes a ``chrome://tracing``-loadable file;
``diff`` compares two runs event class by event class — the quick answer to
"why is this sweep point 10x slower than its neighbor".  ``metrics``
renders a saved registry snapshot — a serve ``/metrics`` document, a farm
manifest, or a bare :meth:`Registry.snapshot` dump — as a readable table
or (``--prometheus``) as text exposition.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import ObsError, cli_errors
from repro.obs.chrome import export_chrome_trace
from repro.obs.tracing import read_events

#: Metrics ``timeline`` can plot, mapped to sample-record fields
#: (``epi_pj`` appears only in runs that enabled energy accounting).
TIMELINE_METRICS = ("cpi", "l1i_mr", "l1d_mr", "wb_stall_frac", "epi_pj")


def summarize_events(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    """The machine-readable summary ``summarize``/``diff`` are built on."""
    counts: Dict[str, int] = {}
    span_wall_us = 0
    span_names: Dict[str, int] = {}
    samples: List[Dict[str, Any]] = []
    energies: List[Dict[str, Any]] = []
    traces = set()
    for record in events:
        ev = record["ev"]
        counts[ev] = counts.get(ev, 0) + 1
        if ev == "span":
            span_wall_us += int(record.get("dur", 0))
            name = record.get("name", "?")
            span_names[name] = span_names.get(name, 0) + 1
            if record.get("trace"):
                traces.add(record["trace"])
        elif ev == "sample":
            samples.append(record)
        elif ev == "energy":
            energies.append(record)
    summary: Dict[str, Any] = {
        "records": len(events),
        "event_counts": dict(sorted(counts.items())),
        "span_count": counts.get("span", 0),
        "span_names": dict(sorted(span_names.items())),
        "span_wall_s": round(span_wall_us / 1e6, 6),
        "trace_ids": sorted(traces),
        "samples": len(samples),
    }
    if samples:
        cpis = [s["cpi"] for s in samples if "cpi" in s]
        if cpis:
            summary["cpi_first"] = cpis[0]
            summary["cpi_last"] = cpis[-1]
            summary["cpi_min"] = min(cpis)
            summary["cpi_max"] = max(cpis)
        summary["cycles_sampled"] = sum(
            int(s.get("d_cycles", 0)) for s in samples)
        summary["instructions_sampled"] = sum(
            int(s.get("d_instr", 0)) for s in samples)
    if energies:
        from repro.energy import ENERGY_CLASSES

        summary["energy_runs"] = len(energies)
        summary["energy_pj"] = {
            cls: round(sum(float(e.get(cls, 0.0)) for e in energies), 1)
            for cls in ENERGY_CLASSES}
        summary["energy_total_pj"] = round(
            sum(float(e.get("total_pj", 0.0)) for e in energies), 1)
        summary["epi_pj"] = energies[-1].get("epi_pj", 0.0)
        technologies = sorted({e.get("technology", "?") for e in energies})
        summary["energy_technologies"] = technologies
    return summary


def format_summary(path: str, summary: Dict[str, Any]) -> str:
    lines = [f"== {path} =="]
    lines.append(f"records      : {summary['records']:,}")
    for ev, count in summary["event_counts"].items():
        lines.append(f"  {ev:<14} {count:,}")
    if summary["span_count"]:
        lines.append(f"span wall    : {summary['span_wall_s']:.3f}s "
                     f"across {summary['span_count']} spans")
        for name, count in summary["span_names"].items():
            lines.append(f"  span {name:<12} x{count}")
    if summary["trace_ids"]:
        shown = ", ".join(summary["trace_ids"][:4])
        more = len(summary["trace_ids"]) - 4
        lines.append(f"traces       : {shown}"
                     + (f" (+{more} more)" if more > 0 else ""))
    if summary["samples"]:
        lines.append(f"samples      : {summary['samples']} "
                     f"({summary.get('instructions_sampled', 0):,} instr, "
                     f"{summary.get('cycles_sampled', 0):,} cycles)")
        if "cpi_min" in summary:
            lines.append(f"interval CPI : {summary['cpi_min']:.3f} min, "
                         f"{summary['cpi_max']:.3f} max, "
                         f"{summary['cpi_last']:.3f} last")
    if "energy_pj" in summary:
        techs = ", ".join(summary.get("energy_technologies", []))
        lines.append(f"energy       : {summary['energy_total_pj']:,.1f} pJ "
                     f"across {summary['energy_runs']} run(s) [{techs}], "
                     f"{summary['epi_pj']:.2f} pJ/instr last")
        for cls, pj in summary["energy_pj"].items():
            lines.append(f"  {cls:<14} {pj:,.1f} pJ")
    return "\n".join(lines)


def _cmd_summarize(args) -> int:
    summary = summarize_events(read_events(args.log))
    if args.json:
        print(json.dumps(summary, indent=1))
    else:
        print(format_summary(str(args.log), summary))
    return 0


def _cmd_timeline(args) -> int:
    from repro.analysis.ascii_plot import line_chart

    events = read_events(args.log)
    samples = [e for e in events if e["ev"] == "sample"]
    if not samples:
        raise ObsError(
            f"{args.log} holds no sample records; run with sampling "
            "enabled (obs.enable(..., sample_interval=N))")
    metric = args.metric
    xs = [s.get("cyc", i) for i, s in enumerate(samples)]
    ys = [float(s.get(metric, 0.0)) for s in samples]
    print(line_chart(xs, {metric: ys},
                     title=f"{metric} per interval — {args.log}"))
    return 0


def _cmd_export(args) -> int:
    document = export_chrome_trace(args.log, args.chrome_trace)
    print(f"wrote {args.chrome_trace}: "
          f"{len(document['traceEvents'])} trace events "
          f"(load via chrome://tracing or ui.perfetto.dev)")
    return 0


def _format_delta(a, b) -> str:
    delta = b - a
    sign = "+" if delta >= 0 else ""
    if isinstance(a, int) and isinstance(b, int):
        return f"{a:,} -> {b:,} ({sign}{delta:,})"
    return f"{a:.4f} -> {b:.4f} ({sign}{delta:.4f})"


def _cmd_diff(args) -> int:
    before = summarize_events(read_events(args.log))
    after = summarize_events(read_events(args.other))
    print(f"== diff: {args.log} -> {args.other} ==")
    all_events = sorted(set(before["event_counts"])
                        | set(after["event_counts"]))
    for ev in all_events:
        a = before["event_counts"].get(ev, 0)
        b = after["event_counts"].get(ev, 0)
        if a != b or args.all:
            print(f"  {ev:<14} {_format_delta(a, b)}")
    for key in ("span_wall_s", "cpi_last", "cpi_max", "epi_pj",
                "energy_total_pj"):
        if key in before or key in after:
            a, b = before.get(key, 0.0), after.get(key, 0.0)
            if a != b or args.all:
                print(f"  {key:<14} {_format_delta(float(a), float(b))}")
    classes = sorted(set(before.get("energy_pj", {}))
                     | set(after.get("energy_pj", {})))
    for cls in classes:
        a = float(before.get("energy_pj", {}).get(cls, 0.0))
        b = float(after.get("energy_pj", {}).get(cls, 0.0))
        if a != b or args.all:
            print(f"  energy:{cls:<7} {_format_delta(a, b)}")
    return 0


def extract_registry_snapshot(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Find the registry snapshot inside a saved JSON document.

    Serve ``/metrics`` documents and farm manifests carry it under an
    ``"obs"`` key; a bare :meth:`Registry.snapshot` dump *is* one.
    """
    if not isinstance(doc, dict):
        raise ObsError("a metrics document must be a JSON object")
    candidate = doc.get("obs", doc)
    if not isinstance(candidate, dict) or not candidate:
        raise ObsError("no registry snapshot found (empty or missing "
                       "'obs' key)")
    for name, entry in candidate.items():
        if not (isinstance(entry, dict) and "type" in entry
                and "values" in entry):
            raise ObsError(
                f"{name!r} is not a metric entry — is this a registry "
                "snapshot (or a document with an 'obs' key)?")
    return candidate


def format_metrics_table(snapshot: Dict[str, Any]) -> str:
    from repro.obs.metrics import histogram_quantiles

    lines = [f"{'METRIC':<36}{'TYPE':<11}{'SERIES':>7}  VALUE"]
    for name in sorted(snapshot):
        entry = snapshot[name]
        values = entry.get("values", {})
        kind = entry.get("type", "?")
        if kind == "histogram":
            count = sum(int(v.get("count", 0)) for v in values.values())
            total = sum(float(v.get("sum", 0.0)) for v in values.values())
            quantiles = histogram_quantiles(entry)
            p95 = quantiles.get("p95")
            detail = (f"count {count}, sum {total:.6g}"
                      + (f", p95 {p95:.6g}" if p95 is not None else ""))
        else:
            total = sum(float(v) for v in values.values())
            detail = f"{total:.10g}"
        lines.append(f"{name:<36}{kind:<11}{len(values):>7}  {detail}")
    return "\n".join(lines)


def _cmd_metrics(args) -> int:
    from repro.obs.metrics import render_prometheus

    try:
        doc = json.loads(Path(args.snapshot).read_text())
    except OSError as exc:
        raise ObsError(f"cannot read {args.snapshot}: {exc}") from exc
    except ValueError as exc:
        raise ObsError(f"{args.snapshot} is not JSON: {exc}") from exc
    snapshot = extract_registry_snapshot(doc)
    if args.prometheus:
        print(render_prometheus(snapshot), end="")
    else:
        print(format_metrics_table(snapshot))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Inspect, plot, export, and diff repro.obs event logs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    summarize = sub.add_parser("summarize",
                               help="event counts, span wall, CPI range")
    summarize.add_argument("log", type=Path, help="JSONL event log")
    summarize.add_argument("--json", action="store_true",
                           help="emit machine-readable JSON")

    timeline = sub.add_parser("timeline",
                              help="ASCII plot of the sampled time series")
    timeline.add_argument("log", type=Path, help="JSONL event log")
    timeline.add_argument("--metric", choices=TIMELINE_METRICS,
                          default="cpi",
                          help="series to plot (default %(default)s)")

    export = sub.add_parser("export", help="convert to other formats")
    export.add_argument("log", type=Path, help="JSONL event log")
    export.add_argument("--chrome-trace", type=Path, required=True,
                        help="write a chrome://tracing-loadable JSON here")

    diff = sub.add_parser("diff", help="compare two runs' event profiles")
    diff.add_argument("log", type=Path, help="baseline JSONL event log")
    diff.add_argument("other", type=Path, help="comparison JSONL event log")
    diff.add_argument("--all", action="store_true",
                      help="show unchanged rows too")

    metrics = sub.add_parser(
        "metrics",
        help="render a saved registry snapshot (serve /metrics JSON, "
             "farm manifest, or bare snapshot)")
    metrics.add_argument("snapshot", type=Path,
                         help="JSON document holding a registry snapshot")
    metrics.add_argument("--prometheus", action="store_true",
                         help="emit Prometheus text exposition instead "
                              "of a table")
    return parser


@cli_errors
def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return {"summarize": _cmd_summarize, "timeline": _cmd_timeline,
            "export": _cmd_export, "diff": _cmd_diff,
            "metrics": _cmd_metrics}[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    import sys

    sys.exit(main())
