"""The observability fast-path gate.

Hot simulator code imports **this module only**::

    from repro.obs import runtime as _obs
    ...
    if _obs.enabled:
        _obs.tracer.emit("l1d_miss", cyc=now, line=dline, cls="read")

``enabled`` is a plain module attribute, so the disabled path costs exactly
one attribute lookup and a truth test — and every instrumentation point in
the simulator sits on a *miss/stall* branch, never in the per-instruction
loop, so tier-1 benchmark throughput is unchanged when tracing is off
(enforced by ``benchmarks/obs_overhead_guard.py``).

State here is deliberately dumb — :mod:`repro.obs` (the package init) owns
the enable/disable choreography; this module exists so the simulator's
imports stay dependency-free and cycle-free.
"""

from __future__ import annotations

from typing import Any, Optional

#: The one-attribute-lookup gate every instrumentation point checks.
enabled: bool = False

#: Active :class:`repro.obs.tracing.Tracer` when ``enabled`` (else ``None``).
tracer: Optional[Any] = None

#: Active :class:`repro.obs.sampler.Sampler` when sampling is on.
sampler: Optional[Any] = None
