"""Exception types raised by the repro library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A simulator or cache configuration is internally inconsistent."""


class TraceError(ReproError):
    """A trace file or trace stream is malformed."""


class SchedulingError(ReproError):
    """The multiprogramming scheduler was driven into an invalid state."""


class StateCorruptionError(ReproError):
    """Simulator state violates a structural invariant (bit flips, dropped
    entries, or a divergence from the functional reference model).

    Raised by the runtime invariant auditor (:mod:`repro.robust.audit`) and
    by the ``check_invariants`` methods of the core state holders.  Carries
    an optional ``details`` dict naming the structure and location."""

    def __init__(self, message: str, details: dict = None):
        super().__init__(message)
        self.details = details or {}


class CheckpointError(ReproError):
    """A checkpoint file is missing, corrupt, or inconsistent with the run
    being resumed (bad magic, version, checksum, or shape mismatch)."""


class FarmError(ReproError):
    """The sweep-execution farm could not complete a task: a worker crashed
    more times than the retry budget allows, exceeded its timeout, or the
    task function itself raised.  Carries the task's label."""

    def __init__(self, message: str, label: str = ""):
        super().__init__(message)
        self.label = label
