"""Exception types raised by the repro library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A simulator or cache configuration is internally inconsistent."""


class TraceError(ReproError):
    """A trace file or trace stream is malformed."""


class SchedulingError(ReproError):
    """The multiprogramming scheduler was driven into an invalid state."""
