"""Exception types raised by the repro library, and the shared CLI
error policy (:func:`cli_errors`) that turns them into one-line
diagnostics instead of tracebacks."""

from __future__ import annotations

import functools
import os
import sys


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A simulator or cache configuration is internally inconsistent."""


class TraceError(ReproError):
    """A trace file or trace stream is malformed."""


class SchedulingError(ReproError):
    """The multiprogramming scheduler was driven into an invalid state."""


class StateCorruptionError(ReproError):
    """Simulator state violates a structural invariant (bit flips, dropped
    entries, or a divergence from the functional reference model).

    Raised by the runtime invariant auditor (:mod:`repro.robust.audit`) and
    by the ``check_invariants`` methods of the core state holders.  Carries
    an optional ``details`` dict naming the structure and location."""

    def __init__(self, message: str, details: dict = None):
        super().__init__(message)
        self.details = details or {}


class CheckpointError(ReproError):
    """A checkpoint file is missing, corrupt, or inconsistent with the run
    being resumed (bad magic, version, checksum, or shape mismatch)."""


class FarmError(ReproError):
    """The sweep-execution farm could not complete a task: a worker crashed
    more times than the retry budget allows, exceeded its timeout, or the
    task function itself raised.  Carries the task's label."""

    def __init__(self, message: str, label: str = ""):
        super().__init__(message)
        self.label = label


class FarmCancelled(FarmError):
    """A farm run was cancelled mid-flight (a caller set the pool's stop
    event, e.g. a draining server abandoning a request whose deadline has
    already been answered).  Outstanding workers were terminated and reaped
    before this was raised."""


class GridError(ReproError):
    """The distributed dispatcher could not complete a sweep: every
    backend was lost *and* local fallback was disabled, or a point
    exhausted its cross-node retry budget.  Carries the point's label."""

    def __init__(self, message: str, label: str = ""):
        super().__init__(message)
        self.label = label


class JournalError(ReproError):
    """A run journal is unusable: corrupt mid-file record, wrong magic or
    version, a sequence gap, or a journal that describes a different sweep
    than the one being resumed.  A *torn final record* (the crash landed
    mid-append) is **not** an error — replay drops it, because the write
    protocol guarantees the transition it described never took effect."""


class ObsError(ReproError):
    """The observability layer was misused (metric type/label mismatch,
    malformed snapshot merge, or an unreadable event log)."""


class FleetError(ReproError):
    """The fleet telemetry plane could not do its job: an SLO file is
    malformed, a benchmark trajectory file is missing or unreadable, or
    exposition text failed strict validation."""


class ServeError(ReproError):
    """The simulation service could not satisfy a request: the server
    rejected it, retries and the circuit breaker gave up, or the client's
    total deadline budget ran out.  Carries the last HTTP status seen
    (0 when the failure never reached the server)."""

    def __init__(self, message: str, status: int = 0):
        super().__init__(message)
        self.status = status


#: Error classes a command-line tool reports as a one-line message with a
#: non-zero exit code; anything else is a genuine bug and may traceback.
EXPECTED_CLI_ERRORS = (ReproError,)


def cli_errors(fn):
    """Decorate a CLI ``main(argv) -> int`` with the shared error policy.

    Expected failures (:data:`EXPECTED_CLI_ERRORS`) print one
    ``error: ...`` line on stderr and exit 1; ``Ctrl-C`` exits 130 with a
    one-line note.  Unexpected exceptions propagate — a traceback for a
    genuine bug is a feature.
    """

    @functools.wraps(fn)
    def wrapper(argv=None) -> int:
        try:
            return fn(argv)
        except EXPECTED_CLI_ERRORS as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        except KeyboardInterrupt:
            print("interrupted", file=sys.stderr)
            return 130
        except BrokenPipeError:
            # Piped into `head` (or any reader that quit): die quietly
            # like a well-behaved filter, 128 + SIGPIPE.  Redirect stdout
            # to devnull so the interpreter's exit-time flush of the
            # closed pipe doesn't raise a second time.
            try:
                devnull = os.open(os.devnull, os.O_WRONLY)
                try:
                    os.dup2(devnull, sys.stdout.fileno())
                finally:
                    os.close(devnull)
            except (OSError, ValueError):
                pass
            return 141

    return wrapper
