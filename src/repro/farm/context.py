"""Ambient farm configuration: one context, every sweep point sees it.

The experiment modules call :func:`repro.analysis.sweep.run_point` from
deep inside their own loops; threading pool/cache handles through every
one of those signatures would smear farm plumbing across the whole
codebase.  Instead the runner (or any caller) opens a session::

    with farm_session(jobs=4, cache_dir="~/.cache/repro-farm") as ctx:
        run_experiment("fig5")          # every point inside is cached

and ``run_point`` / ``run_sweep`` consult :func:`current_context` for the
active cache, telemetry sink, and default job count.  Sessions nest; the
innermost wins (a pool worker opens its own ``jobs=1`` session so nothing
forks twice).
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Any, List, Optional, Sequence

from repro.core.engine import DEFAULT_ENGINE
from repro.farm.cache import ResultCache
from repro.farm.telemetry import RunTelemetry


@dataclass
class FarmContext:
    """The active execution policy for sweep points."""

    #: Default worker count for ``run_sweep``-style batch calls.
    jobs: int = 1
    cache: Optional[ResultCache] = None
    telemetry: Optional[RunTelemetry] = None
    #: Per-task wall-clock limit (seconds); ``None`` disables.
    task_timeout: Optional[float] = None
    #: Re-runs granted to a crashed or timed-out worker.
    retries: int = 1
    #: Simulation engine every point in the session runs under.
    engine: str = DEFAULT_ENGINE
    #: Energy technology every point accounts under (``None`` = disabled).
    energy: Optional[str] = None
    #: Distributed dispatcher (:class:`repro.grid.GridDispatcher`); when
    #: set, sweep points go to the serve-node pool instead of local
    #: workers.  Typed loosely so ``repro.farm`` never imports
    #: ``repro.grid`` at module load.
    dispatcher: Optional[Any] = None
    #: Write-ahead run journal: a :class:`repro.durable.RunJournal`, a
    #: journal file path, or a journal *directory* (each sweep inside the
    #: session then gets its own content-addressed journal file, which is
    #: what makes auto-resume work).  ``None`` = journaling off, with the
    #: exact pre-durable code path.  Typed loosely so ``repro.farm``
    #: never imports ``repro.durable`` at module load.
    journal: Optional[Any] = None
    #: Optional :class:`repro.durable.DurableSettings` for the session.
    durable: Optional[Any] = None
    #: ``scenario_sha256`` of the resolved scenario document driving the
    #: session (``None`` = no scenario).  Joins every point's cache key.
    scenario: Optional[str] = None


_STACK: List[FarmContext] = []


def current_context() -> Optional[FarmContext]:
    """The innermost active :class:`FarmContext`, or ``None``."""
    return _STACK[-1] if _STACK else None


@contextmanager
def farm_session(jobs: int = 1,
                 cache: Optional[ResultCache] = None,
                 cache_dir=None,
                 no_cache: bool = False,
                 telemetry: Optional[RunTelemetry] = None,
                 quiet: bool = False,
                 task_timeout: Optional[float] = None,
                 retries: int = 1,
                 engine: str = DEFAULT_ENGINE,
                 energy: Optional[str] = None,
                 nodes: Optional[Sequence[str]] = None,
                 grid_settings=None,
                 journal=None,
                 durable=None,
                 scenario: Optional[str] = None):
    """Activate a :class:`FarmContext` for the duration of the block.

    Args:
        jobs: default parallelism for batched point execution.
        cache: an existing :class:`ResultCache` to use.
        cache_dir: build a cache rooted here (ignored if ``cache`` given).
        no_cache: disable result caching entirely.
        telemetry: an existing telemetry sink; one is created if omitted.
        quiet: create the default telemetry without a progress stream.
        task_timeout: per-point wall-clock limit in seconds.
        retries: crash/timeout re-run budget per point.
        engine: simulation engine for every point in the session
            (``repro.core.engine.ENGINE_NAMES``); part of each point's
            cache key.
        energy: energy technology name for every point in the session
            (``repro.energy.ENERGY_TECHNOLOGIES``); ``None`` disables
            accounting.  The derived model joins each point's cache key.
        nodes: serve-backend URLs; when given, a
            :class:`repro.grid.GridDispatcher` over those nodes executes
            every uncached point in the session (with local in-process
            fallback), and its health poller is stopped when the session
            closes.
        grid_settings: optional :class:`repro.grid.GridSettings`
            overriding the dispatcher's failure policy.
        journal: write-ahead run journal (path, directory, or
            :class:`repro.durable.RunJournal`): every sweep in the
            session becomes crash-resumable exactly-once (see
            :mod:`repro.durable`).  Requires caching to stay enabled.
        durable: optional :class:`repro.durable.DurableSettings`
            overriding lease/heartbeat/retry-budget timing.
        scenario: ``scenario_sha256`` of the resolved scenario document
            this session runs (see :mod:`repro.scenario`); joins every
            point's cache key.
    """
    if journal is not None and no_cache:
        from repro.errors import JournalError

        raise JournalError(
            "journal= requires the result cache: the journal records "
            "digests, the cache holds the results (drop no_cache)")
    if no_cache:
        cache = None
    elif cache is None:
        cache = ResultCache(cache_dir)  # cache_dir=None -> default root
    if telemetry is None:
        telemetry = RunTelemetry(stream=None if quiet else sys.stderr)
    dispatcher = None
    if nodes:
        from repro.grid import GridDispatcher  # deferred: optional layer

        dispatcher = GridDispatcher(nodes, settings=grid_settings,
                                    cache=cache, telemetry=telemetry)
    ctx = FarmContext(jobs=jobs, cache=cache, telemetry=telemetry,
                      task_timeout=task_timeout, retries=retries,
                      engine=engine, energy=energy, dispatcher=dispatcher,
                      journal=journal, durable=durable, scenario=scenario)
    _STACK.append(ctx)
    try:
        yield ctx
    finally:
        _STACK.pop()
        if dispatcher is not None:
            dispatcher.close()


@contextmanager
def scenario_scope(scenario: Optional[str]):
    """Bind a scenario identity to the ambient farm policy.

    Pushes a copy of the innermost context (or a bare one, outside any
    session) with ``scenario`` set, so every point executed inside runs —
    and is cached — under that scenario's ``scenario_sha256``.  The
    experiment registry wraps each experiment in this scope, which is
    how ``repro-experiments fig5`` and ``repro-experiments run
    scenarios/fig5.toml`` land on identical cache keys.  ``scenario=None``
    is a no-op (the ambient context, whatever it is, stays active).
    """
    if scenario is None:
        yield current_context()
        return
    base = current_context()
    ctx = (replace(base, scenario=scenario) if base is not None
           else FarmContext(scenario=scenario))
    _STACK.append(ctx)
    try:
        yield ctx
    finally:
        _STACK.pop()
