"""Worker pool: fan picklable tasks across forked processes.

The paper farmed its sweep out as "a separate simulator binary per
configuration"; this is the same move in-process.  ``run_tasks(fn,
payloads)`` executes ``fn(payload)`` for every payload and returns the
results **in payload order**, regardless of completion order — callers can
rely on determinism.

Execution model:

* one forked process per task, at most ``jobs`` alive at a time (a task is
  a whole simulation, seconds of work — per-task process cost is noise);
* each child reports ``("ok", result)`` or ``("error", message)`` over a
  pipe;
* a child that *dies without reporting* (segfault, OOM-kill, ``os._exit``)
  is retried up to ``retries`` times, then raises
  :class:`~repro.errors.FarmError` — crashes are plausibly transient;
* a child that exceeds ``timeout`` seconds is terminated and retried under
  the same budget;
* a task function that *raises* fails fast with no retry — a deterministic
  exception would just raise again.

When ``jobs <= 1`` or the platform cannot fork (Windows, some macOS
configurations), the pool degrades to plain in-process execution with
identical semantics except that timeouts are not enforced (there is no
process to kill).

Interruption is first-class:

* a caller can hand ``run_tasks`` a ``stop_event`` (any object with
  ``is_set()``); setting it terminates and reaps every outstanding worker
  and raises :class:`~repro.errors.FarmCancelled` — this is how a
  draining server abandons a request it has already answered with 504;
* when running on the main thread, SIGINT/SIGTERM are latched via
  :class:`~repro.robust.signals.SignalDrain` for the duration of the run:
  children are terminated and reaped *first*, then the signal is
  re-delivered with its original disposition — Ctrl-C or a supervisor's
  TERM never orphans live forks.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import signal
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import FarmCancelled, FarmError
from repro.robust.signals import SignalDrain

#: How long one scheduling-loop wait on the children's pipes may block.
_POLL_SECONDS = 0.05


def fork_available() -> bool:
    """Whether the platform supports the ``fork`` start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def _child(conn, fn: Callable[[Any], Any], payload: Any) -> None:
    # The fork inherits the parent's latched SIGINT/SIGTERM handlers
    # (SignalDrain); restore the defaults so ``terminate()`` and Ctrl-C
    # actually kill the child instead of being latched and ignored.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_DFL)
    try:
        result = fn(payload)
    except BaseException as exc:  # report, don't crash: crashes mean retry
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        return
    conn.send(("ok", result))
    conn.close()


def _label(labels: Optional[Sequence[str]], index: int) -> str:
    if labels is not None and index < len(labels):
        return labels[index]
    return f"task {index}"


def _run_serial(fn, payloads, labels, on_result) -> List[Any]:
    results: List[Any] = []
    for index, payload in enumerate(payloads):
        try:
            result = fn(payload)
        except FarmError:
            raise
        except Exception as exc:
            raise FarmError(
                f"task {_label(labels, index)!r} failed: "
                f"{type(exc).__name__}: {exc}",
                label=_label(labels, index)) from exc
        results.append(result)
        if on_result is not None:
            on_result(index, result)
    return results


def run_tasks(fn: Callable[[Any], Any],
              payloads: Sequence[Any],
              jobs: int = 1,
              timeout: Optional[float] = None,
              retries: int = 1,
              labels: Optional[Sequence[str]] = None,
              on_result: Optional[Callable[[int, Any], None]] = None,
              stop_event: Optional[Any] = None
              ) -> List[Any]:
    """Run ``fn`` over every payload; results in payload order.

    Args:
        fn: top-level callable (picklable not required under fork, but keep
            it importable for readability); receives one payload.
        payloads: task inputs; each must produce a picklable result.
        jobs: maximum concurrently running workers.
        timeout: per-task wall-clock limit in seconds (parallel mode only).
        retries: how many *re-runs* a crashed or timed-out task gets.
        labels: optional human-readable task names for errors/telemetry.
        on_result: called as ``on_result(index, result)`` as each task
            completes (completion order, not payload order).
        stop_event: optional cancellation token (``is_set()`` is polled
            every scheduling pass, parallel mode only); when set, workers
            are terminated and :class:`~repro.errors.FarmCancelled` is
            raised.

    Raises:
        FarmCancelled: ``stop_event`` was set mid-run.
        FarmError: a task raised, or crashed/timed out past its retry
            budget.  Outstanding workers are terminated before raising.
    """
    if not payloads:
        return []
    if jobs <= 1 or not fork_available():
        return _run_serial(fn, payloads, labels, on_result)
    with SignalDrain() as drain:
        return _run_forked(fn, payloads, jobs, timeout, retries, labels,
                           on_result, stop_event, drain)


def _run_forked(fn, payloads, jobs, timeout, retries, labels, on_result,
                stop_event, drain: SignalDrain) -> List[Any]:
    ctx = multiprocessing.get_context("fork")
    results: List[Any] = [None] * len(payloads)
    pending = deque(range(len(payloads)))
    attempts: Dict[int, int] = {i: 0 for i in range(len(payloads))}
    # index -> (process, receiving pipe end, absolute deadline or None)
    active: Dict[int, Tuple[Any, Any, Optional[float]]] = {}

    def _reap(index: int) -> None:
        proc, conn, _ = active.pop(index)
        try:
            conn.close()
        except OSError:
            pass
        if proc.is_alive():
            proc.terminate()
        proc.join()

    def _retry_or_fail(index: int, what: str) -> None:
        attempts[index] += 1
        if attempts[index] > retries:
            raise FarmError(
                f"task {_label(labels, index)!r} {what} "
                f"(attempt {attempts[index]} of {retries + 1})",
                label=_label(labels, index))
        pending.appendleft(index)

    try:
        while pending or active:
            if drain.triggered:
                # Reap everything (the ``finally`` below), then let the
                # signal take its normal course on the way out.
                raise FarmCancelled(
                    "worker pool interrupted by signal; children reaped")
            if stop_event is not None and stop_event.is_set():
                raise FarmCancelled("worker pool cancelled by caller")
            while pending and len(active) < jobs:
                index = pending.popleft()
                recv, send = ctx.Pipe(duplex=False)
                proc = ctx.Process(target=_child,
                                   args=(send, fn, payloads[index]),
                                   daemon=True)
                proc.start()
                send.close()  # child holds the only writer now
                deadline = (time.monotonic() + timeout
                            if timeout is not None else None)
                active[index] = (proc, recv, deadline)

            ready = multiprocessing.connection.wait(
                [conn for _, conn, _ in active.values()],
                timeout=_POLL_SECONDS)
            now = time.monotonic()
            for index in list(active):
                proc, conn, deadline = active[index]
                if conn in ready:
                    try:
                        status, value = conn.recv()
                    except (EOFError, OSError):
                        _reap(index)
                        _retry_or_fail(index, "crashed mid-report")
                        continue
                    _reap(index)
                    if status != "ok":
                        raise FarmError(
                            f"task {_label(labels, index)!r} failed: {value}",
                            label=_label(labels, index))
                    results[index] = value
                    if on_result is not None:
                        on_result(index, value)
                elif deadline is not None and now > deadline:
                    _reap(index)
                    _retry_or_fail(index, f"timed out after {timeout:g}s")
                elif not proc.is_alive() and not conn.poll():
                    code = proc.exitcode
                    _reap(index)
                    _retry_or_fail(index,
                                   f"crashed (exit code {code}) "
                                   f"without reporting a result")
    finally:
        for index in list(active):
            _reap(index)
    return results
