"""Worker pool: fan picklable tasks across forked processes.

The paper farmed its sweep out as "a separate simulator binary per
configuration"; this is the same move in-process.  ``run_tasks(fn,
payloads)`` executes ``fn(payload)`` for every payload and returns the
results **in payload order**, regardless of completion order — callers can
rely on determinism.

Execution model:

* one forked process per task, at most ``jobs`` alive at a time (a task is
  a whole simulation, seconds of work — per-task process cost is noise);
* each child reports ``("ok", result)`` or ``("error", message)`` over a
  pipe;
* a child that *dies without reporting* (segfault, OOM-kill, ``os._exit``)
  is retried up to ``retries`` times, then raises
  :class:`~repro.errors.FarmError` — crashes are plausibly transient;
* a child that exceeds ``timeout`` seconds is terminated and retried under
  the same budget;
* a task function that *raises* fails fast with no retry — a deterministic
  exception would just raise again.

Liveness (the durable layer's watchdog channel): when ``heartbeat_s`` is
set, each child runs a daemon thread that sends ``("hb", t)`` over the
same result pipe every beat.  When ``lease_s`` is also set, the parent
declares a worker **stuck** — as opposed to merely *slow* — when its
lease elapses with no heartbeat (a sleeping worker still beats; a
SIGSTOPped or livelocked one cannot), SIGKILLs it, and retries under the
same budget.  ``on_start``/``on_heartbeat`` let a caller (the journal
driver) witness every attempt and every proof of life.

When ``jobs <= 1`` or the platform cannot fork (Windows, some macOS
configurations), the pool degrades to plain in-process execution with
identical semantics except that timeouts and leases are not enforced
(there is no separate process to watch or kill).

Interruption is first-class:

* a caller can hand ``run_tasks`` a ``stop_event`` (any object with
  ``is_set()``); setting it terminates and reaps every outstanding worker
  and raises :class:`~repro.errors.FarmCancelled` — this is how a
  draining server abandons a request it has already answered with 504;
* when running on the main thread, SIGINT/SIGTERM are latched via
  :class:`~repro.robust.signals.SignalDrain` for the duration of the run:
  children are terminated and reaped *first*, then the signal is
  re-delivered with its original disposition — Ctrl-C or a supervisor's
  TERM never orphans live forks.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import signal
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, FarmCancelled, FarmError
from repro.robust.signals import SignalDrain

#: How long one scheduling-loop wait on the children's pipes may block.
_POLL_SECONDS = 0.05

#: How long a terminated child gets to die politely before SIGKILL.
_TERM_GRACE_SECONDS = 2.0


def fork_available() -> bool:
    """Whether the platform supports the ``fork`` start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def _child(conn, fn: Callable[[Any], Any], payload: Any,
           heartbeat_s: Optional[float] = None) -> None:
    # The fork inherits the parent's latched SIGINT/SIGTERM handlers
    # (SignalDrain); restore the defaults so ``terminate()`` and Ctrl-C
    # actually kill the child instead of being latched and ignored.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_DFL)
    send_lock = threading.Lock()   # beat thread and main thread share conn
    stop_beat = threading.Event()
    if heartbeat_s is not None:
        def _beat() -> None:
            while not stop_beat.wait(heartbeat_s):
                try:
                    with send_lock:
                        conn.send(("hb", time.monotonic()))
                except OSError:
                    return   # parent gone or pipe closed: nothing to prove

        threading.Thread(target=_beat, name="pool-heartbeat",
                         daemon=True).start()
    try:
        result = fn(payload)
    except BaseException as exc:  # report, don't crash: crashes mean retry
        stop_beat.set()
        try:
            with send_lock:
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        return
    stop_beat.set()
    with send_lock:
        conn.send(("ok", result))
    conn.close()


def _label(labels: Optional[Sequence[str]], index: int) -> str:
    if labels is not None and index < len(labels):
        return labels[index]
    return f"task {index}"


def _run_serial(fn, payloads, labels, on_result, on_start) -> List[Any]:
    results: List[Any] = []
    for index, payload in enumerate(payloads):
        if on_start is not None:
            on_start(index)
        try:
            result = fn(payload)
        except FarmError:
            raise
        except Exception as exc:
            raise FarmError(
                f"task {_label(labels, index)!r} failed: "
                f"{type(exc).__name__}: {exc}",
                label=_label(labels, index)) from exc
        results.append(result)
        if on_result is not None:
            on_result(index, result)
    return results


def _validate_pool_params(jobs, timeout, retries, heartbeat_s, lease_s):
    if timeout is not None and not timeout > 0:
        raise ConfigurationError(
            f"timeout must be positive (or None), got {timeout!r}: a "
            "non-positive timeout kills every task before it starts")
    if retries < 0:
        raise ConfigurationError(
            f"retries must be >= 0, got {retries!r}")
    if heartbeat_s is not None and not heartbeat_s > 0:
        raise ConfigurationError(
            f"heartbeat_s must be positive (or None), got {heartbeat_s!r}")
    if lease_s is not None:
        if not lease_s > 0:
            raise ConfigurationError(
                f"lease_s must be positive (or None), got {lease_s!r}: a "
                "zero/negative lease declares every worker stuck instantly")
        if heartbeat_s is None:
            raise ConfigurationError(
                "lease_s without heartbeat_s would reap every worker at "
                "the lease deadline: enable heartbeats or drop the lease")
        if heartbeat_s > lease_s / 2:
            raise ConfigurationError(
                f"heartbeat_s ({heartbeat_s:g}) must be at most half of "
                f"lease_s ({lease_s:g}); a lease needs several beats of "
                "slack or healthy workers get reaped")


def run_tasks(fn: Callable[[Any], Any],
              payloads: Sequence[Any],
              jobs: int = 1,
              timeout: Optional[float] = None,
              retries: int = 1,
              labels: Optional[Sequence[str]] = None,
              on_result: Optional[Callable[[int, Any], None]] = None,
              stop_event: Optional[Any] = None,
              heartbeat_s: Optional[float] = None,
              lease_s: Optional[float] = None,
              on_heartbeat: Optional[Callable[[int], None]] = None,
              on_start: Optional[Callable[[int], None]] = None,
              on_retry: Optional[Callable[[int, str], None]] = None
              ) -> List[Any]:
    """Run ``fn`` over every payload; results in payload order.

    Args:
        fn: top-level callable (picklable not required under fork, but keep
            it importable for readability); receives one payload.
        payloads: task inputs; each must produce a picklable result.
        jobs: maximum concurrently running workers.
        timeout: per-task wall-clock limit in seconds (parallel mode only).
        retries: how many *re-runs* a crashed or timed-out task gets.
        labels: optional human-readable task names for errors/telemetry.
        on_result: called as ``on_result(index, result)`` as each task
            completes (completion order, not payload order).
        stop_event: optional cancellation token (``is_set()`` is polled
            every scheduling pass, parallel mode only); when set, workers
            are terminated and :class:`~repro.errors.FarmCancelled` is
            raised.
        heartbeat_s: when set, each forked child proves liveness this
            often over the result pipe.
        lease_s: when set (requires ``heartbeat_s``), a worker whose
            lease elapses with **no** heartbeat is declared stuck,
            SIGKILLed, and retried under the same ``retries`` budget —
            distinct from ``timeout``, which bounds total runtime of
            even a healthy worker.
        on_heartbeat: called as ``on_heartbeat(index)`` on every beat
            (the durable layer renews journal leases here).
        on_start: called as ``on_start(index)`` immediately before every
            execution attempt of a task, including retries (the durable
            layer journals ``point_claimed`` here; raising aborts the
            run).
        on_retry: called as ``on_retry(index, what)`` when an attempt is
            abandoned — crashed, timed out, or lease-expired (``what``
            says which) — whether or not budget remains (the durable
            layer journals ``point_reclaimed`` here).

    Raises:
        ConfigurationError: a parameter is out of range (checked up
            front — misconfiguration must not surface hours into a run).
        FarmCancelled: ``stop_event`` was set mid-run.
        FarmError: a task raised, or crashed/timed out past its retry
            budget.  Outstanding workers are terminated before raising.
    """
    _validate_pool_params(jobs, timeout, retries, heartbeat_s, lease_s)
    if not payloads:
        return []
    if jobs <= 1 or not fork_available():
        return _run_serial(fn, payloads, labels, on_result, on_start)
    with SignalDrain() as drain:
        return _run_forked(fn, payloads, jobs, timeout, retries, labels,
                           on_result, stop_event, drain, heartbeat_s,
                           lease_s, on_heartbeat, on_start, on_retry)


def _run_forked(fn, payloads, jobs, timeout, retries, labels, on_result,
                stop_event, drain: SignalDrain, heartbeat_s, lease_s,
                on_heartbeat, on_start, on_retry) -> List[Any]:
    ctx = multiprocessing.get_context("fork")
    results: List[Any] = [None] * len(payloads)
    pending = deque(range(len(payloads)))
    attempts: Dict[int, int] = {i: 0 for i in range(len(payloads))}
    # index -> (process, receiving pipe end, absolute deadline or None)
    active: Dict[int, Tuple[Any, Any, Optional[float]]] = {}
    # index -> monotonic time of the last proof of life (start counts).
    last_beat: Dict[int, float] = {}

    def _reap(index: int) -> None:
        proc, conn, _ = active.pop(index)
        last_beat.pop(index, None)
        try:
            conn.close()
        except OSError:
            pass
        if proc.is_alive():
            # terminate() is SIGTERM, which a SIGSTOPped (stuck) child
            # never receives; escalate to SIGKILL rather than hang here.
            proc.terminate()
            proc.join(_TERM_GRACE_SECONDS)
            if proc.is_alive():
                proc.kill()
        proc.join()

    def _retry_or_fail(index: int, what: str) -> None:
        if on_retry is not None:
            on_retry(index, what)
        attempts[index] += 1
        if attempts[index] > retries:
            raise FarmError(
                f"task {_label(labels, index)!r} {what} "
                f"(attempt {attempts[index]} of {retries + 1})",
                label=_label(labels, index))
        pending.appendleft(index)

    try:
        while pending or active:
            if drain.triggered:
                # Reap everything (the ``finally`` below), then let the
                # signal take its normal course on the way out.
                raise FarmCancelled(
                    "worker pool interrupted by signal; children reaped")
            if stop_event is not None and stop_event.is_set():
                raise FarmCancelled("worker pool cancelled by caller")
            while pending and len(active) < jobs:
                index = pending.popleft()
                if on_start is not None:
                    on_start(index)
                recv, send = ctx.Pipe(duplex=False)
                proc = ctx.Process(target=_child,
                                   args=(send, fn, payloads[index],
                                         heartbeat_s),
                                   daemon=True)
                proc.start()
                send.close()  # child holds the only writer now
                deadline = (time.monotonic() + timeout
                            if timeout is not None else None)
                active[index] = (proc, recv, deadline)
                last_beat[index] = time.monotonic()

            ready = multiprocessing.connection.wait(
                [conn for _, conn, _ in active.values()],
                timeout=_POLL_SECONDS)
            now = time.monotonic()
            for index in list(active):
                proc, conn, deadline = active[index]
                if conn in ready:
                    try:
                        status, value = conn.recv()
                    except (EOFError, OSError):
                        _reap(index)
                        _retry_or_fail(index, "crashed mid-report")
                        continue
                    if status == "hb":
                        last_beat[index] = now
                        if on_heartbeat is not None:
                            on_heartbeat(index)
                        continue
                    _reap(index)
                    if status != "ok":
                        raise FarmError(
                            f"task {_label(labels, index)!r} failed: {value}",
                            label=_label(labels, index))
                    results[index] = value
                    if on_result is not None:
                        on_result(index, value)
                elif deadline is not None and now > deadline:
                    _reap(index)
                    _retry_or_fail(index, f"timed out after {timeout:g}s")
                elif (lease_s is not None
                      and now - last_beat.get(index, now) > lease_s):
                    # Expired lease with no beat: *stuck*, not slow — a
                    # slow worker would still be heartbeating.
                    _reap(index)
                    _retry_or_fail(
                        index,
                        f"went silent: lease expired after {lease_s:g}s "
                        f"with no heartbeat (worker presumed stuck)")
                elif not proc.is_alive() and not conn.poll():
                    code = proc.exitcode
                    _reap(index)
                    _retry_or_fail(index,
                                   f"crashed (exit code {code}) "
                                   f"without reporting a result")
    finally:
        for index in list(active):
            _reap(index)
    return results
