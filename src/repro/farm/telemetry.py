"""Run telemetry: per-point progress, throughput, hit-rate, JSON manifest.

A :class:`RunTelemetry` collects one event per completed unit of work —
a simulated sweep point, a cache hit that replaced one, or a whole
experiment — and can

* narrate progress to a stream (stderr by default, ``stream=None`` for
  silence),
* summarize throughput (simulated instructions per wall-clock second) and
  cache hit-rate, and
* persist the whole run as a JSON *manifest* (atomic write), which is what
  CI asserts against instead of scraping log lines.

Worker processes each carry their own telemetry; the parent folds their
summaries back in with :meth:`merge`, so counters survive the process
boundary.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any, Dict, List, Optional, TextIO, Union

from repro.robust.atomic import atomic_write_text

PathLike = Union[str, os.PathLike]

MANIFEST_MAGIC = "repro-farm-manifest"
MANIFEST_VERSION = 1


class RunTelemetry:
    """Accumulates farm events and renders progress / a run manifest."""

    def __init__(self, stream: Optional[TextIO] = sys.stderr,
                 tag: str = "farm"):
        self.stream = stream
        self.tag = tag
        self.events: List[Dict[str, Any]] = []
        self._started = time.monotonic()
        # Counters folded in from worker-process summaries.
        self._merged_points = 0
        self._merged_hits = 0
        self._merged_instructions = 0
        self._merged_wall = 0.0

    # ------------------------------------------------------------- recording

    def record_point(self, label: str, instructions: int, wall_s: float,
                     cached: bool) -> None:
        """One sweep point finished (from simulation or from the cache)."""
        self.events.append({
            "kind": "point",
            "label": label,
            "instructions": int(instructions),
            "wall_s": round(float(wall_s), 6),
            "cached": bool(cached),
        })
        if self.stream is not None:
            if cached:
                detail = "cache hit"
            else:
                rate = instructions / wall_s if wall_s > 0 else 0.0
                detail = (f"{wall_s:.1f}s, {instructions:,} instr, "
                          f"{rate / 1e6:.2f} M instr/s")
            done = sum(1 for e in self.events if e["kind"] == "point")
            print(f"[{self.tag}] point {done}: {label} ({detail})",
                  file=self.stream, flush=True)

    def record_task(self, label: str, wall_s: float,
                    summary: Optional[Dict[str, Any]] = None) -> None:
        """A coarser unit (e.g. one experiment) finished; optionally fold
        in the telemetry summary its worker process reported."""
        event: Dict[str, Any] = {
            "kind": "task",
            "label": label,
            "wall_s": round(float(wall_s), 6),
        }
        if summary:
            event["points"] = summary.get("points", 0)
            event["cache_hits"] = summary.get("cache_hits", 0)
            self.merge(summary)
        self.events.append(event)
        if self.stream is not None:
            extra = ""
            if summary:
                extra = (f", {summary.get('points', 0)} points, "
                         f"{summary.get('cache_hits', 0)} cached")
            print(f"[{self.tag}] task {label} done in {wall_s:.1f}s{extra}",
                  file=self.stream, flush=True)

    def merge(self, summary: Dict[str, Any]) -> None:
        """Fold another telemetry's :meth:`summary` into this one's totals
        (used across the worker-process boundary)."""
        self._merged_points += summary.get("points", 0)
        self._merged_hits += summary.get("cache_hits", 0)
        self._merged_instructions += summary.get("instructions", 0)
        self._merged_wall += summary.get("point_wall_s", 0.0)

    # ------------------------------------------------------------- summaries

    @property
    def elapsed_s(self) -> float:
        return time.monotonic() - self._started

    def summary(self) -> Dict[str, Any]:
        points = [e for e in self.events if e["kind"] == "point"]
        n = len(points) + self._merged_points
        hits = (sum(1 for e in points if e["cached"]) + self._merged_hits)
        instructions = (sum(e["instructions"] for e in points)
                        + self._merged_instructions)
        point_wall = (sum(e["wall_s"] for e in points if not e["cached"])
                      + self._merged_wall)
        elapsed = self.elapsed_s
        return {
            "points": n,
            "cache_hits": hits,
            "cache_hit_rate": hits / n if n else 0.0,
            "instructions": instructions,
            "point_wall_s": round(point_wall, 6),
            "elapsed_s": round(elapsed, 6),
            "instructions_per_second": (instructions / elapsed
                                        if elapsed > 0 else 0.0),
        }

    def format_summary(self) -> str:
        s = self.summary()
        return (f"{s['points']} points, {s['cache_hits']} cache hits "
                f"({100.0 * s['cache_hit_rate']:.1f}%), "
                f"{s['instructions']:,} instructions in "
                f"{s['elapsed_s']:.1f}s "
                f"({s['instructions_per_second'] / 1e6:.2f} M instr/s)")

    def print_summary(self) -> None:
        if self.stream is not None:
            print(f"[{self.tag}] {self.format_summary()}",
                  file=self.stream, flush=True)

    # -------------------------------------------------------------- manifest

    def write_manifest(self, path: PathLike) -> None:
        """Persist the run as JSON: summary plus every event, atomically."""
        manifest = {
            "magic": MANIFEST_MAGIC,
            "version": MANIFEST_VERSION,
            "summary": self.summary(),
            "events": self.events,
        }
        atomic_write_text(path, json.dumps(manifest, indent=1) + "\n")
