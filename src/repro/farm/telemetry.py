"""Run telemetry: per-point progress, throughput, hit-rate, JSON manifest.

A :class:`RunTelemetry` collects one event per completed unit of work —
a simulated sweep point, a cache hit that replaced one, or a whole
experiment — and can

* narrate progress to a stream (stderr by default, ``stream=None`` for
  silence),
* summarize throughput (simulated instructions per wall-clock second) and
  cache hit-rate, and
* persist the whole run as a JSON *manifest* (atomic write), which is what
  CI asserts against instead of scraping log lines.

Worker processes each carry their own telemetry; the parent folds their
summaries back in with :meth:`merge`, so counters survive the process
boundary.

Counting is backed by a :class:`repro.obs.metrics.Registry` (one per
telemetry instance, so concurrent runs in one test process never
double-count): ``farm_points_total`` and ``farm_instructions_total`` are
labeled by ``source`` (``simulated`` vs ``cached``), and
``farm_point_wall_seconds`` is a histogram over simulated points only.
Throughput is reported against **simulated** instructions — a cache hit
replays instructions without spending wall-clock on them, so folding hits
into an instructions-per-second rate overstated simulator speed (badly so
on warm-cache runs).
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any, Dict, List, Optional, TextIO, Union

from repro.obs.metrics import Registry
from repro.robust.atomic import atomic_write_text

PathLike = Union[str, os.PathLike]

MANIFEST_MAGIC = "repro-farm-manifest"
MANIFEST_VERSION = 1


class RunTelemetry:
    """Accumulates farm events and renders progress / a run manifest."""

    def __init__(self, stream: Optional[TextIO] = sys.stderr,
                 tag: str = "farm",
                 registry: Optional[Registry] = None):
        self.stream = stream
        self.tag = tag
        self.events: List[Dict[str, Any]] = []
        self._started = time.monotonic()
        self.registry = registry if registry is not None else Registry()
        self._m_points = self.registry.counter(
            "farm_points_total", "sweep points completed, by source",
            labels=("source",))
        self._m_instructions = self.registry.counter(
            "farm_instructions_total",
            "instructions accounted to completed points, by source",
            labels=("source",))
        self._m_wall = self.registry.histogram(
            "farm_point_wall_seconds",
            "wall-clock seconds per simulated (non-cached) point")
        # Counters folded in from worker-process summaries.
        self._merged_points = 0
        self._merged_hits = 0
        self._merged_sim_instructions = 0
        self._merged_cached_instructions = 0
        self._merged_wall = 0.0

    # ------------------------------------------------------------- recording

    def record_point(self, label: str, instructions: int, wall_s: float,
                     cached: bool) -> None:
        """One sweep point finished (from simulation or from the cache)."""
        self.events.append({
            "kind": "point",
            "label": label,
            "instructions": int(instructions),
            "wall_s": round(float(wall_s), 6),
            "cached": bool(cached),
        })
        source = "cached" if cached else "simulated"
        self._m_points.labels(source).inc()
        self._m_instructions.labels(source).inc(int(instructions))
        if not cached:
            self._m_wall.observe(float(wall_s))
        if self.stream is not None:
            if cached:
                detail = "cache hit"
            else:
                rate = instructions / wall_s if wall_s > 0 else 0.0
                detail = (f"{wall_s:.1f}s, {instructions:,} instr, "
                          f"{rate / 1e6:.2f} M instr/s")
            done = sum(1 for e in self.events if e["kind"] == "point")
            print(f"[{self.tag}] point {done}: {label} ({detail})",
                  file=self.stream, flush=True)

    def record_task(self, label: str, wall_s: float,
                    summary: Optional[Dict[str, Any]] = None) -> None:
        """A coarser unit (e.g. one experiment) finished; optionally fold
        in the telemetry summary its worker process reported."""
        event: Dict[str, Any] = {
            "kind": "task",
            "label": label,
            "wall_s": round(float(wall_s), 6),
        }
        if summary:
            event["points"] = summary.get("points", 0)
            event["cache_hits"] = summary.get("cache_hits", 0)
            self.merge(summary)
        self.events.append(event)
        if self.stream is not None:
            extra = ""
            if summary:
                extra = (f", {summary.get('points', 0)} points, "
                         f"{summary.get('cache_hits', 0)} cached")
            print(f"[{self.tag}] task {label} done in {wall_s:.1f}s{extra}",
                  file=self.stream, flush=True)

    def merge(self, summary: Dict[str, Any]) -> None:
        """Fold another telemetry's :meth:`summary` into this one's totals
        (used across the worker-process boundary).  Pre-bugfix summaries
        lack the simulated/cached split; their whole total is treated as
        simulated, matching the old (inflated) rate rather than losing it."""
        self._merged_points += summary.get("points", 0)
        self._merged_hits += summary.get("cache_hits", 0)
        self._merged_sim_instructions += summary.get(
            "simulated_instructions", summary.get("instructions", 0))
        self._merged_cached_instructions += summary.get(
            "cached_instructions", 0)
        self._merged_wall += summary.get("point_wall_s", 0.0)

    # ------------------------------------------------------------- summaries

    @property
    def elapsed_s(self) -> float:
        return time.monotonic() - self._started

    def summary(self) -> Dict[str, Any]:
        points = [e for e in self.events if e["kind"] == "point"]
        n = len(points) + self._merged_points
        hits = (sum(1 for e in points if e["cached"]) + self._merged_hits)
        simulated = (sum(e["instructions"] for e in points if not e["cached"])
                     + self._merged_sim_instructions)
        cached = (sum(e["instructions"] for e in points if e["cached"])
                  + self._merged_cached_instructions)
        point_wall = (sum(e["wall_s"] for e in points if not e["cached"])
                      + self._merged_wall)
        elapsed = self.elapsed_s
        # Throughput counts only simulated instructions: a cache hit costs
        # no simulation wall-clock, so folding its instructions in would
        # inflate the rate (the warm-cache pathology this fixes).
        rate = simulated / elapsed if elapsed > 0 else 0.0
        return {
            "points": n,
            "cache_hits": hits,
            "cache_hit_rate": hits / n if n else 0.0,
            "instructions": simulated + cached,
            "simulated_instructions": simulated,
            "cached_instructions": cached,
            "point_wall_s": round(point_wall, 6),
            "elapsed_s": round(elapsed, 6),
            "instructions_per_second": rate,
            "simulated_instructions_per_second": rate,
        }

    def format_summary(self) -> str:
        s = self.summary()
        return (f"{s['points']} points, {s['cache_hits']} cache hits "
                f"({100.0 * s['cache_hit_rate']:.1f}%), "
                f"{s['instructions']:,} instructions in "
                f"{s['elapsed_s']:.1f}s "
                f"({s['instructions_per_second'] / 1e6:.2f} M simulated "
                f"instr/s)")

    def print_summary(self) -> None:
        if self.stream is not None:
            print(f"[{self.tag}] {self.format_summary()}",
                  file=self.stream, flush=True)

    # -------------------------------------------------------------- manifest

    def write_manifest(self, path: PathLike) -> None:
        """Persist the run as JSON: summary plus every event, atomically."""
        manifest = {
            "magic": MANIFEST_MAGIC,
            "version": MANIFEST_VERSION,
            "summary": self.summary(),
            "obs": self.registry.snapshot(),
            "events": self.events,
        }
        atomic_write_text(path, json.dumps(manifest, indent=1) + "\n")
