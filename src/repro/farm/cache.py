"""Content-addressed result cache: never simulate the same point twice.

A *sweep point* is fully described by (SystemConfig, workload profiles,
time slice, multiprogramming level, warmup, instruction budget).  All of
that already serializes to plain dicts via :mod:`repro.core.serialization`,
so a point has a canonical JSON form and therefore a SHA-256 identity —
the cache key.  The simulator is deterministic (seeds live in the
profiles), which is what makes memoization sound: the same key always
denotes the same :class:`~repro.core.stats.SimStats`.

On-disk format, one JSON file per point under the cache root::

    {"magic": "repro-farm", "version": 1,
     "sha256": "<hex digest of the canonical payload JSON>",
     "payload": {"key": ..., "stats": {...}, "meta": {...}}}

Entries are written with :func:`repro.robust.atomic.atomic_write_text`
(temp file + fsync + rename), so concurrent writers of the same point
cannot clobber each other — the rename is atomic and both write identical
stats anyway.  Every way an entry can be wrong — unparsable, wrong magic or
version, checksum mismatch, key mismatch, malformed stats — is *detected
and treated as a miss* (the bad file is unlinked best-effort); a corrupt
cache can cost time, never correctness.

The configuration's ``name`` field is deliberately excluded from the
canonical form: it is documentation, not simulation input, and excluding
it lets differently-labelled but physically identical machines (the
baseline that fig5/fig9/fig11 all re-run) share one entry.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Sequence, Tuple, Union

from repro.core.config import SystemConfig
from repro.core.engine import DEFAULT_ENGINE
from repro.core.serialization import config_to_dict, profile_to_dict
from repro.core.stats import SimStats
from repro.robust.atomic import atomic_write_text
from repro.trace.synthetic import BenchmarkProfile

PathLike = Union[str, os.PathLike]

CACHE_MAGIC = "repro-farm"
#: Bump when the canonical payload layout or the simulator's observable
#: behaviour changes; old entries then miss instead of lying.
#: Version 2 added the execution engine to the payload: engines are
#: bit-identical by contract, but a cached result must still record which
#: engine produced it so an equivalence bug can never hide behind a warm
#: cache.
#: Version 3 added the energy-model identity (``None`` or the technology
#: name plus the full derived cost vector) and the energy fields that
#: ride in every cached ``SimStats``; bumping makes pre-energy entries
#: miss instead of answering with stats that lack the new fields.
#: Version 4 added the scenario identity (``None`` or the resolved
#: scenario document's ``scenario_sha256``): points run under a declared
#: scenario are addressed under that scenario's digest, so a scenario
#: file is reproducible against the cache by content, and pre-scenario
#: entries miss instead of masquerading as scenario-verified results.
CACHE_SCHEMA_VERSION = 4

#: Environment variable overriding the default cache root.
CACHE_ENV_VAR = "REPRO_FARM_CACHE"


def default_cache_dir() -> Path:
    """The cache root: ``$REPRO_FARM_CACHE`` or ``~/.cache/repro-farm``."""
    env = os.environ.get(CACHE_ENV_VAR)
    if env:
        return Path(env).expanduser()
    return Path("~/.cache/repro-farm").expanduser()


def point_payload(config: SystemConfig,
                  profiles: Sequence[BenchmarkProfile],
                  time_slice: int,
                  level: Optional[int],
                  warmup_instructions: int,
                  max_instructions: Optional[int],
                  engine: str = DEFAULT_ENGINE,
                  energy: Optional[str] = None,
                  scenario: Optional[str] = None) -> Dict[str, Any]:
    """The canonical, JSON-ready description of one sweep point.

    This dict is both the cache key's preimage and the exact payload a
    pool worker rebuilds the simulation from — the key can never drift
    from what actually ran.  The engine participates in the key even
    though engines are bit-identical: a result cached under one engine
    is never served to a request for the other, so the lockstep
    guarantee is checkable against production caches.

    The energy selection participates the same way, but as the *derived
    model* (technology name plus the full per-event cost vector), not
    just the name: stats cached with and without energy fields can never
    collide, and a change to the energy constants moves every affected
    key even without a schema bump.

    ``scenario`` is the resolved scenario document's ``scenario_sha256``
    (``None`` when the point was not launched from a scenario).  It is
    inert for execution but participates in the key: a scenario's points
    are content-addressed under the scenario's own identity, which is
    what lets the same scenario file replay bit-identically across
    ``--jobs``, ``--nodes``, and ``--journal`` resume.
    """
    config_dict = config_to_dict(config)
    config_dict.pop("name", None)  # label, not simulation input
    if energy is None:
        energy_desc = None
    else:
        from repro.energy import derive_energy_model

        energy_desc = derive_energy_model(config, energy).params()
    return {
        "schema": CACHE_SCHEMA_VERSION,
        "config": config_dict,
        "profiles": [profile_to_dict(p) for p in profiles],
        "time_slice": time_slice,
        "level": level,
        "warmup_instructions": warmup_instructions,
        "max_instructions": max_instructions,
        "engine": engine,
        "energy": energy_desc,
        "scenario": scenario,
    }


def _canonical(payload: Dict[str, Any]) -> bytes:
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def payload_key(payload: Dict[str, Any]) -> str:
    """SHA-256 hex digest of a canonical point payload."""
    return hashlib.sha256(_canonical(payload)).hexdigest()


def point_key(config: SystemConfig,
              profiles: Sequence[BenchmarkProfile],
              time_slice: int,
              level: Optional[int] = None,
              warmup_instructions: int = 0,
              max_instructions: Optional[int] = None,
              engine: str = DEFAULT_ENGINE,
              energy: Optional[str] = None,
              scenario: Optional[str] = None) -> str:
    """The content address of one sweep point."""
    return payload_key(point_payload(config, profiles, time_slice, level,
                                     warmup_instructions, max_instructions,
                                     engine, energy, scenario))


class ResultCache:
    """A directory of content-addressed :class:`SimStats` results.

    Hit/miss/store/corrupt counts accumulate per instance (i.e. per
    process); :meth:`stats` combines them with on-disk totals.
    """

    def __init__(self, root: Optional[PathLike] = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt_dropped = 0

    # ------------------------------------------------------------------ paths

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def _entry_paths(self) -> Iterator[Path]:
        if not self.root.is_dir():
            return iter(())
        return iter(sorted(self.root.glob("*.json")))

    # ----------------------------------------------------------------- lookup

    def get(self, key: str) -> Optional[SimStats]:
        """The cached stats for ``key``, or ``None`` (miss).

        Any verification failure counts as ``corrupt_dropped`` and the
        offending file is removed so it cannot waste a read twice.
        """
        path = self.path_for(key)
        try:
            blob = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        payload = self._verify(blob, key, path)
        if payload is None:
            self.corrupt_dropped += 1
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        return SimStats.from_dict(payload["stats"])

    def _verify(self, blob: bytes, key: str, path: Path) -> Optional[dict]:
        try:
            envelope = json.loads(blob.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(envelope, dict):
            return None
        if envelope.get("magic") != CACHE_MAGIC:
            return None
        if envelope.get("version") != CACHE_SCHEMA_VERSION:
            return None
        payload = envelope.get("payload")
        if not isinstance(payload, dict):
            return None
        digest = hashlib.sha256(_canonical(payload)).hexdigest()
        if digest != envelope.get("sha256"):
            return None
        if payload.get("key") != key:
            return None
        stats = payload.get("stats")
        if not isinstance(stats, dict):
            return None
        try:
            SimStats.from_dict(stats)
        except Exception:
            return None
        return payload

    # ------------------------------------------------------------------ store

    def put(self, key: str, stats: SimStats,
            meta: Optional[Dict[str, Any]] = None) -> Path:
        """Store one result atomically; returns the entry path."""
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {
            "key": key,
            "stats": stats.to_dict(),
            "meta": dict(meta or {}),
        }
        envelope = {
            "magic": CACHE_MAGIC,
            "version": CACHE_SCHEMA_VERSION,
            "sha256": hashlib.sha256(_canonical(payload)).hexdigest(),
            "payload": payload,
        }
        path = self.path_for(key)
        atomic_write_text(path, json.dumps(envelope, indent=1) + "\n")
        self.stores += 1
        return path

    # ------------------------------------------------------------- management

    @property
    def quarantine_dir(self) -> Path:
        """Where :meth:`scrub` moves corrupt entries (outside the
        ``*.json`` glob, so quarantined files can never be served)."""
        return self.root / "quarantine"

    def scrub(self, quarantine: bool = True) -> Dict[str, Any]:
        """Proactively verify every entry's checksum; corrupt entries are
        moved into ``quarantine/`` (or unlinked with ``quarantine=False``).

        ``get`` already detects corruption lazily — but only for keys
        that are asked for again, and it *deletes* the evidence.  A scrub
        walks the whole cache up front and preserves the bad bytes for a
        post-mortem.  Safe against concurrent readers/writers/collectors
        the same way :meth:`gc` is: a file vanishing mid-walk is skipped.

        Returns a summary dict: ``checked``, ``ok``, ``corrupt``,
        ``quarantined``, ``removed``, ``quarantine_dir``.
        """
        checked = ok = corrupt = quarantined = removed = 0
        for path in self._entry_paths():
            try:
                blob = path.read_bytes()
            except OSError:
                continue  # vanished under us (concurrent gc/clear): skip
            checked += 1
            if self._verify(blob, path.stem, path) is not None:
                ok += 1
                continue
            corrupt += 1
            self.corrupt_dropped += 1
            try:
                if quarantine:
                    self.quarantine_dir.mkdir(parents=True, exist_ok=True)
                    os.replace(path, self.quarantine_dir / path.name)
                    quarantined += 1
                else:
                    path.unlink()
                    removed += 1
            except OSError:
                pass
        return {
            "root": str(self.root),
            "checked": checked,
            "ok": ok,
            "corrupt": corrupt,
            "quarantined": quarantined,
            "removed": removed,
            "quarantine_dir": str(self.quarantine_dir),
        }

    def entries(self) -> Iterator[Tuple[Path, Dict[str, Any]]]:
        """Yield ``(path, meta)`` for every readable entry."""
        for path in self._entry_paths():
            try:
                envelope = json.loads(path.read_text(encoding="utf-8"))
                meta = envelope["payload"].get("meta", {})
            except Exception:
                meta = {}
            yield path, meta

    def gc(self, max_age_days: Optional[float] = None,
           keep: Optional[int] = None) -> int:
        """Drop entries older than ``max_age_days`` and/or all but the
        newest ``keep``; returns the number removed.

        Safe to run concurrently with readers, writers, and other
        collectors: every ``stat``/``unlink`` tolerates the file vanishing
        between the directory listing and the call (the classic TOCTOU) —
        a racing :meth:`get` then simply sees a miss and re-simulates.
        """
        ages: Dict[Path, float] = {}
        for path in self._entry_paths():
            try:
                ages[path] = path.stat().st_mtime
            except OSError:
                continue  # vanished under us (concurrent gc/clear): skip
        by_age = sorted(ages, key=ages.get, reverse=True)
        doomed = set()
        if max_age_days is not None:
            cutoff = time.time() - max_age_days * 86400.0
            doomed.update(p for p, mtime in ages.items() if mtime < cutoff)
        if keep is not None:
            doomed.update(by_age[keep:])
        removed = 0
        for path in doomed:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        removed = 0
        for path in self._entry_paths():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> Dict[str, Any]:
        """On-disk totals plus this process's hit/miss accounting."""
        paths = list(self._entry_paths())
        total_bytes = 0
        for path in paths:
            try:
                total_bytes += path.stat().st_size
            except OSError:
                pass
        lookups = self.hits + self.misses
        return {
            "root": str(self.root),
            "entries": len(paths),
            "bytes": total_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt_dropped": self.corrupt_dropped,
            "hit_rate": self.hits / lookups if lookups else 0.0,
        }
