"""Sweep points as farm tasks: specify, address, execute, memoize.

A :class:`PointSpec` bundles everything a sweep point needs; its
:meth:`~PointSpec.payload` is the canonical dict that (a) hashes to the
cache key and (b) ships to a pool worker, which rebuilds the simulation
from it via :mod:`repro.core.serialization`.  Because worker and key share
one description, a cached result is by construction the result of the
keyed computation.

:func:`run_points` is the farm's main entry: cache-probe every point,
execute the misses through :func:`repro.farm.pool.run_tasks`, store and
narrate each result, and return stats **in input order** — callers cannot
observe whether a point came from silicon or disk.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.config import SystemConfig
from repro.core.engine import DEFAULT_ENGINE
from repro.core.stats import SimStats
from repro.farm.cache import ResultCache, payload_key, point_payload
from repro.farm.pool import run_tasks
from repro.farm.telemetry import RunTelemetry
from repro.params import DEFAULT_TIME_SLICE
from repro.trace.synthetic import BenchmarkProfile


@dataclass(frozen=True)
class PointSpec:
    """One sweep point, fully specified."""

    label: str
    config: SystemConfig
    profiles: Tuple[BenchmarkProfile, ...]
    time_slice: int = DEFAULT_TIME_SLICE
    level: Optional[int] = None
    warmup_instructions: int = 0
    max_instructions: Optional[int] = None
    engine: str = DEFAULT_ENGINE
    #: Energy accounting technology name (``None`` = disabled); the
    #: *derived model* joins the payload, so it is part of the cache key.
    energy: Optional[str] = None
    #: ``scenario_sha256`` of the resolved scenario document this point
    #: was launched from (``None`` = no scenario).  Inert for execution,
    #: but part of the payload and therefore the cache key — a scenario's
    #: results are addressed under the scenario's own content identity.
    scenario: Optional[str] = None

    def payload(self) -> Dict[str, Any]:
        """Canonical dict: cache-key preimage and worker input."""
        return point_payload(self.config, self.profiles, self.time_slice,
                             self.level, self.warmup_instructions,
                             self.max_instructions, self.engine,
                             self.energy, self.scenario)

    def key(self) -> str:
        """Content address of this point."""
        return payload_key(self.payload())


def execute_point(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one canonical point payload; the pool's task function.

    Returns a picklable dict: the stats snapshot plus wall-clock so the
    parent's telemetry can attribute time spent in workers, and an ``obs``
    snapshot of this process's global metrics registry so forked workers
    ship their counters back over the existing result channel (the parent
    folds them in; see :func:`run_points`).

    This is the farm's process-fault boundary: when the chaos harness arms
    :data:`repro.robust.faults.WORKER_FAULT_ENV`, the injected crash/stall
    happens here — before any result exists — so a killed worker can only
    ever cost a retry, never corrupt a result.
    """
    import repro.obs as obs
    from repro.core.serialization import config_from_dict, profile_from_dict
    from repro.core.simulator import Simulation

    # In a traced run a forked worker inherits runtime.enabled=True and the
    # tracer rebinds to a per-pid sibling file on first emit; a spawned
    # worker starts cold and picks tracing up from the environment here.
    obs.enable_from_env()

    if os.environ.get("REPRO_WORKER_FAULTS"):
        from repro.robust.faults import maybe_worker_fault

        maybe_worker_fault(label="execute_point")

    config_dict = dict(payload["config"])
    config_dict.setdefault("name", "farm-point")
    config = config_from_dict(config_dict)
    profiles = [profile_from_dict(p) for p in payload["profiles"]]
    # An "obs_trace" key is out-of-band (the serve layer adds it to a copy
    # of the payload; cache keys are computed from the pristine one): the
    # simulation's spans are collected under that trace ID and shipped back
    # so the caller can stitch the cross-process trace together.
    trace = (obs.Trace(payload["obs_trace"])
             if payload.get("obs_trace") else None)
    # The payload carries the *derived* energy model, not just its name:
    # the worker runs exactly the cost vector the cache key hashed.
    energy = payload.get("energy")
    if energy is not None:
        from repro.energy import EnergyModel

        energy = EnergyModel.from_params(energy)
    started = time.monotonic()
    sim = Simulation(config=config, profiles=profiles,
                     time_slice=payload["time_slice"],
                     level=payload["level"],
                     warmup_instructions=payload["warmup_instructions"],
                     engine=payload.get("engine", DEFAULT_ENGINE),
                     energy=energy)
    if trace is not None:
        with obs.activate_trace(trace):
            stats = sim.run(max_instructions=payload["max_instructions"])
    else:
        stats = sim.run(max_instructions=payload["max_instructions"])
    wall_s = time.monotonic() - started
    # Per-task registry, not the global one: a forked worker inherits the
    # parent's global counters and the inline pool *is* the parent, so
    # shipping a delta-free global snapshot would double-count.  The
    # receiving side merges this exactly once.
    task_metrics = obs.Registry()
    task_metrics.counter("sim_runs_total", "simulations executed").inc()
    task_metrics.counter("sim_instructions_total",
                         "instructions simulated").inc(stats.instructions)
    task_metrics.histogram("sim_wall_seconds",
                           "wall-clock seconds per simulation"
                           ).observe(wall_s)
    if energy is not None:
        task_metrics.counter("sim_energy_pj_total",
                             "accounted energy (picojoules)"
                             ).inc(stats.energy_total_fj // 1000)
    result = {
        "stats": stats.to_dict(),
        "wall_s": wall_s,
        "obs": task_metrics.snapshot(),
    }
    if trace is not None:
        result["trace_spans"] = trace.spans
    return result


def run_points(specs: Sequence[PointSpec],
               jobs: int = 1,
               cache: Optional[ResultCache] = None,
               telemetry: Optional[RunTelemetry] = None,
               timeout: Optional[float] = None,
               retries: int = 1,
               on_point=None,
               stop_event=None,
               dispatcher=None,
               journal=None,
               durable=None) -> List[SimStats]:
    """Execute every point (cache first, then the pool); input order out.

    Args:
        specs: the points to produce results for.
        jobs: worker processes for the misses (1 = in-process).
        cache: optional result cache probed/filled per point.
        telemetry: optional sink for per-point events.
        timeout: per-point wall-clock limit (parallel mode).
        retries: crash/timeout re-run budget per point.
        on_point: called with each label as its processing starts, in
            input order (the legacy ``progress`` hook of ``run_sweep``).
        stop_event: optional cancellation token forwarded to the pool
            (see :func:`repro.farm.pool.run_tasks`).
        dispatcher: a :class:`repro.grid.GridDispatcher`; when set, the
            whole call delegates to it (the dispatcher honors the same
            cache/telemetry/ordering contract, against its own session
            handles) and every other execution knob is ignored — except
            ``journal``/``durable``, which are forwarded.
        journal: a :class:`repro.durable.RunJournal`, journal file path,
            or journal directory; when set, the whole sweep runs under a
            write-ahead journal (see :mod:`repro.durable`) and is
            resumable exactly-once after a crash of any process,
            including this one.  Requires ``cache``.
        durable: optional :class:`repro.durable.DurableSettings`
            overriding lease/heartbeat/retry-budget timing.
    """
    if dispatcher is not None:
        return dispatcher.run_points(specs, on_point=on_point,
                                     journal=journal, durable=durable)
    if journal is not None:
        return _run_points_durable(specs, jobs, cache, telemetry, timeout,
                                   on_point, stop_event, journal, durable)
    results: List[Optional[SimStats]] = [None] * len(specs)
    todo: List[int] = []
    keys: List[Optional[str]] = [None] * len(specs)
    for i, spec in enumerate(specs):
        if on_point is not None:
            on_point(spec.label)
        if cache is not None:
            keys[i] = spec.key()
            hit = cache.get(keys[i])
            if hit is not None:
                results[i] = hit
                if telemetry is not None:
                    telemetry.record_point(spec.label, hit.instructions,
                                           0.0, cached=True)
                continue
        todo.append(i)

    def finish(j: int, value: Dict[str, Any]) -> None:
        i = todo[j]
        stats = SimStats.from_dict(value["stats"])
        results[i] = stats
        if cache is not None:
            key = keys[i] if keys[i] is not None else specs[i].key()
            cache.put(key, stats, meta={
                "label": specs[i].label,
                "config": specs[i].config.name,
                "instructions": stats.instructions,
                "wall_s": round(value["wall_s"], 3),
                "created_unix": int(time.time()),
            })
        if telemetry is not None:
            telemetry.record_point(specs[i].label, stats.instructions,
                                   value["wall_s"], cached=False)
            if value.get("obs"):
                telemetry.registry.merge(value["obs"])

    run_tasks(execute_point,
              [specs[i].payload() for i in todo],
              jobs=jobs,
              timeout=timeout,
              retries=retries,
              labels=[specs[i].label for i in todo],
              on_result=finish,
              stop_event=stop_event)
    return results  # type: ignore[return-value]


def _retry_reason(what: str) -> str:
    return "lease_expired" if "lease expired" in what else "worker_crashed"


def _run_points_durable(specs: Sequence[PointSpec], jobs, cache, telemetry,
                        timeout, on_point, stop_event, journal,
                        durable) -> List[SimStats]:
    """The journaled twin of :func:`run_points`'s local path.

    Same contract (cache first, input order out, callers cannot tell
    silicon from disk) plus the WAL: recovery replays ``point_done``
    records validated against the cache, every execution attempt is
    journaled as a lease before it starts, every stored result is
    journaled after the cache holds it, and the pool's heartbeat/lease
    machinery feeds the journal's watchdog counters.  The per-point
    retry budget comes from ``durable.max_point_retries`` and is counted
    *across resumes* — the pool's own retry knob is slaved to it.
    """
    from repro.durable import DurableRun, DurableSettings

    settings = durable if durable is not None else DurableSettings()
    run = DurableRun(journal, cache, settings,
                     registry=telemetry.registry if telemetry else None)
    try:
        recovered = run.begin(specs)
        results: List[Optional[SimStats]] = [None] * len(specs)
        todo: List[int] = []
        for i, spec in enumerate(specs):
            if on_point is not None:
                on_point(spec.label)
            hit = recovered.get(i)
            if hit is None and i not in run.state.done:
                # A cache entry with no done record is the signature of a
                # crash between cache.put and the journal append — the
                # result is durable, only the record is missing.
                hit = cache.get(spec.key())
                if hit is not None:
                    run.done(i, hit)
            if hit is not None:
                results[i] = hit
                if telemetry is not None:
                    telemetry.record_point(spec.label, hit.instructions,
                                           0.0, cached=True)
                continue
            todo.append(i)

        parallel = jobs > 1

        def on_start(j: int) -> None:
            run.claim(todo[j])

        def on_heartbeat(j: int) -> None:
            run.heartbeat(todo[j])

        def on_retry(j: int, what: str) -> None:
            run.reclaim(todo[j], reason=_retry_reason(what))

        def finish(j: int, value: Dict[str, Any]) -> None:
            i = todo[j]
            stats = SimStats.from_dict(value["stats"])
            results[i] = stats
            cache.put(specs[i].key(), stats, meta={
                "label": specs[i].label,
                "config": specs[i].config.name,
                "instructions": stats.instructions,
                "wall_s": round(value["wall_s"], 3),
                "created_unix": int(time.time()),
            })
            run.done(i, stats)   # after the put: done asserts durability
            if telemetry is not None:
                telemetry.record_point(specs[i].label, stats.instructions,
                                       value["wall_s"], cached=False)
                if value.get("obs"):
                    telemetry.registry.merge(value["obs"])

        run_tasks(execute_point,
                  [specs[i].payload() for i in todo],
                  jobs=jobs,
                  timeout=timeout,
                  retries=settings.max_point_retries,
                  labels=[specs[i].label for i in todo],
                  on_result=finish,
                  stop_event=stop_event,
                  heartbeat_s=settings.heartbeat_s if parallel else None,
                  lease_s=settings.lease_s if parallel else None,
                  on_heartbeat=on_heartbeat if parallel else None,
                  on_start=on_start,
                  on_retry=on_retry)
        run.seal()
        return results  # type: ignore[return-value]
    finally:
        run.close()
