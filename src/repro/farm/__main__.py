"""``python -m repro.farm`` — alias for the ``repro-farm`` CLI."""

import sys

from repro.farm.cli import main

if __name__ == "__main__":
    sys.exit(main())
