"""``repro-farm``: inspect and manage the content-addressed result cache.

Usage::

    repro-farm stats                     # entry count, bytes, root
    repro-farm stats --json              # machine-readable
    repro-farm gc --max-age-days 30      # drop stale entries
    repro-farm gc --keep 1000            # keep only the newest 1000
    repro-farm clear                     # drop everything
    repro-farm scrub                     # verify checksums, quarantine
    repro-farm scrub --remove            # ... or delete corrupt entries

The cache root is ``--cache-dir``, else ``$REPRO_FARM_CACHE``, else
``~/.cache/repro-farm``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.errors import cli_errors
from repro.farm.cache import ResultCache


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-farm",
        description="Manage the sweep farm's content-addressed result cache.",
    )
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="cache root (default: $REPRO_FARM_CACHE or "
                             "~/.cache/repro-farm)")
    sub = parser.add_subparsers(dest="command", required=True)

    stats = sub.add_parser("stats", help="show cache size and contents")
    stats.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON")
    stats.add_argument("--entries", action="store_true",
                       help="also list every entry's metadata")

    gc = sub.add_parser("gc", help="drop stale or excess entries")
    gc.add_argument("--max-age-days", type=float, default=None,
                    help="drop entries older than this many days")
    gc.add_argument("--keep", type=int, default=None,
                    help="keep only the newest N entries")

    sub.add_parser("clear", help="drop every cache entry")

    scrub = sub.add_parser(
        "scrub", help="verify every entry's checksum; corrupt entries "
                      "are quarantined (get only finds corruption lazily)")
    scrub.add_argument("--remove", action="store_true",
                       help="delete corrupt entries instead of moving "
                            "them into quarantine/")
    scrub.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON")
    return parser


def _cmd_stats(cache: ResultCache, args) -> int:
    info = cache.stats()
    # Session counters are meaningless for a fresh CLI process.
    for key in ("hits", "misses", "stores", "corrupt_dropped", "hit_rate"):
        info.pop(key, None)
    if args.json:
        if args.entries:
            info["entry_meta"] = [meta for _, meta in cache.entries()]
        print(json.dumps(info, indent=1))
        return 0
    print(f"cache root : {info['root']}")
    print(f"entries    : {info['entries']}")
    print(f"size       : {info['bytes'] / 1024:.1f} KiB")
    if args.entries:
        for path, meta in cache.entries():
            label = meta.get("label", "?")
            instr = meta.get("instructions", 0)
            print(f"  {path.stem[:16]}…  {label}  ({instr:,} instr)")
    return 0


@cli_errors
def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    cache = ResultCache(args.cache_dir)
    if args.command == "stats":
        return _cmd_stats(cache, args)
    if args.command == "gc":
        if args.max_age_days is None and args.keep is None:
            print("gc: pass --max-age-days and/or --keep", file=sys.stderr)
            return 2
        removed = cache.gc(max_age_days=args.max_age_days, keep=args.keep)
        print(f"removed {removed} entr{'y' if removed == 1 else 'ies'}")
        return 0
    if args.command == "clear":
        removed = cache.clear()
        print(f"removed {removed} entr{'y' if removed == 1 else 'ies'}")
        return 0
    if args.command == "scrub":
        summary = cache.scrub(quarantine=not args.remove)
        if args.json:
            print(json.dumps(summary, indent=1))
        else:
            disposal = (f"{summary['removed']} removed" if args.remove
                        else f"{summary['quarantined']} quarantined into "
                             f"{summary['quarantine_dir']}")
            print(f"scrubbed {summary['checked']} entries: "
                  f"{summary['ok']} ok, {summary['corrupt']} corrupt "
                  f"({disposal})")
        return 1 if summary["corrupt"] else 0
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
