"""repro.farm: parallel sweep execution with content-addressed memoization.

The paper's evaluation is a grid of independent simulation points — it was
farmed out as "a separate simulator binary per configuration".  This
package is that farm for the reproduction:

* :mod:`repro.farm.pool` — forked worker pool with per-task timeout,
  bounded crash retry, deterministic result ordering, and an in-process
  fallback;
* :mod:`repro.farm.cache` — SHA-256 content-addressed :class:`SimStats`
  cache (atomic, checksummed entries; corruption degrades to a miss);
* :mod:`repro.farm.points` — sweep points as farm tasks;
* :mod:`repro.farm.telemetry` — progress, throughput, hit-rate, and a
  JSON run manifest;
* :mod:`repro.farm.context` — the ambient session that lets
  ``run_point``/``run_sweep``/``repro-experiments`` pick all of this up
  without new plumbing through every experiment;
* :mod:`repro.farm.cli` — the ``repro-farm`` cache-management CLI.

Quickstart::

    from repro.farm import farm_session
    from repro.experiments import run_experiment

    with farm_session(jobs=4):
        result = run_experiment("fig5")   # parallel + memoized
"""

from repro.farm.cache import (
    CACHE_SCHEMA_VERSION,
    ResultCache,
    default_cache_dir,
    point_key,
)
from repro.farm.context import FarmContext, current_context, farm_session
from repro.farm.points import PointSpec, execute_point, run_points
from repro.farm.pool import fork_available, run_tasks
from repro.farm.telemetry import RunTelemetry

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "ResultCache",
    "default_cache_dir",
    "point_key",
    "FarmContext",
    "current_context",
    "farm_session",
    "PointSpec",
    "execute_point",
    "run_points",
    "fork_available",
    "run_tasks",
    "RunTelemetry",
]
