"""repro: a reproduction of "Implementing a Cache for a High-Performance GaAs
Microprocessor" (Olukotun, Mudge & Brown, ISCA 1991).

A trace-driven two-level cache simulator with synthetic MIPS-era workloads,
multiprogramming, all four of the paper's L1-D write policies (including the
novel *write-only* policy), unified/split secondary caches, and the Section 9
memory-concurrency mechanisms.  The :mod:`repro.experiments` package
regenerates every table and figure of the paper's evaluation.

Quickstart::

    from repro import base_architecture, default_suite, simulate

    stats = simulate(base_architecture(),
                     default_suite(instructions_per_benchmark=100_000))
    print(f"CPI = {stats.cpi():.3f}")
"""

from repro.core import (
    DEFAULT_ENGINE,
    ENGINE_NAMES,
    BypassMode,
    Cache,
    CacheConfig,
    ConcurrencyConfig,
    FunctionalMemorySystem,
    L2Config,
    MemorySystem,
    SecondaryCache,
    SimStats,
    Simulation,
    SystemConfig,
    TLBConfig,
    WriteBuffer,
    WriteBufferConfig,
    WritePolicy,
    base_architecture,
    fetch8_architecture,
    optimized_architecture,
    simulate,
    split_l2_architecture,
)
from repro.energy import (
    ENERGY_TECHNOLOGIES,
    EnergyAccountant,
    EnergyModel,
    derive_energy_model,
)
from repro.farm import (
    ResultCache,
    RunTelemetry,
    farm_session,
    point_key,
    run_points,
)
from repro.mmu import TLB, PageTable
from repro.robust import (
    AuditConfig,
    FaultInjector,
    InvariantAuditor,
    load_checkpoint,
    resume,
    save_checkpoint,
)
from repro.sched import Process, Scheduler
from repro.trace import (
    TABLE1_SUITE,
    BenchmarkProfile,
    SyntheticBenchmark,
    TraceBatch,
    default_suite,
    replicate_suite,
)

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_ENGINE",
    "ENGINE_NAMES",
    "BypassMode",
    "Cache",
    "CacheConfig",
    "ConcurrencyConfig",
    "FunctionalMemorySystem",
    "L2Config",
    "MemorySystem",
    "SecondaryCache",
    "SimStats",
    "Simulation",
    "SystemConfig",
    "TLBConfig",
    "WriteBuffer",
    "WriteBufferConfig",
    "WritePolicy",
    "base_architecture",
    "fetch8_architecture",
    "optimized_architecture",
    "simulate",
    "split_l2_architecture",
    "TLB",
    "PageTable",
    "Process",
    "Scheduler",
    "TABLE1_SUITE",
    "BenchmarkProfile",
    "SyntheticBenchmark",
    "TraceBatch",
    "default_suite",
    "replicate_suite",
    "AuditConfig",
    "FaultInjector",
    "InvariantAuditor",
    "load_checkpoint",
    "resume",
    "save_checkpoint",
    "ResultCache",
    "RunTelemetry",
    "farm_session",
    "point_key",
    "run_points",
    "ENERGY_TECHNOLOGIES",
    "EnergyAccountant",
    "EnergyModel",
    "derive_energy_model",
    "__version__",
]
