"""SRAM part catalog and array sizing.

The machine's caches are built from two parts (paper, Section 2):

* the L1 caches and L2 tags — and, in the optimized design, the on-MCM
  L2-I — use 1K x 32-bit GaAs SRAMs with a 3 ns access time (Vitesse
  HGaAs III);
* the off-MCM secondary cache uses 8K x 8-bit BiCMOS SRAMs with a 10 ns
  access time.

Given a cache's capacity, :func:`chips_needed` computes how many physical
parts implement its 32-bit-wide data array — the quantity that drives MCM
area, interconnect loading, and therefore access time
(:mod:`repro.tech.mcm`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Width of the data path between CPU and caches, in bits.
DATA_PATH_BITS = 32


@dataclass(frozen=True)
class SramPart:
    """One SRAM product.

    Attributes:
        name: catalog name.
        words: addressable words per chip.
        bits: output width per chip.
        access_ns: address-to-data access time.
        technology: process family, for reporting.
    """

    name: str
    words: int
    bits: int
    access_ns: float
    technology: str

    def __post_init__(self) -> None:
        if self.words <= 0 or self.bits <= 0:
            raise ConfigurationError("SRAM geometry must be positive")
        if self.access_ns <= 0:
            raise ConfigurationError("SRAM access time must be positive")

    @property
    def bits_per_chip(self) -> int:
        """Total storage per chip in bits."""
        return self.words * self.bits


#: The 1K x 32 GaAs part used for L1 data/instruction arrays and L2 tags.
GAAS_1KX32 = SramPart(name="1Kx32 GaAs", words=1024, bits=32,
                      access_ns=3.0, technology="HGaAs III")

#: The 8K x 8 BiCMOS part used for the off-MCM secondary cache.
BICMOS_8KX8 = SramPart(name="8Kx8 BiCMOS", words=8192, bits=8,
                       access_ns=10.0, technology="BiCMOS")


def chips_needed(cache_words: int, part: SramPart,
                 path_bits: int = DATA_PATH_BITS) -> int:
    """Number of parts to build a ``cache_words`` array of ``path_bits``.

    Chips are ganged ``path_bits / part.bits`` wide and stacked
    ``cache_words / part.words`` deep.
    """
    if cache_words <= 0:
        raise ConfigurationError("cache size must be positive")
    width = math.ceil(path_bits / part.bits)
    depth = math.ceil(cache_words / part.words)
    return width * depth


def storage_bits(cache_words: int, path_bits: int = DATA_PATH_BITS) -> int:
    """Bits of storage in a cache array (excluding tags)."""
    return cache_words * path_bits


def tag_storage_bits(cache_words: int, line_words: int,
                     tag_bits: int) -> int:
    """Bits of tag storage for a cache (the paper tracks this closely:
    8 KW of 4 W-line primary tags cost 40 Kb on the MMU; doubling the line
    to 8 W halves it to 20 Kb, Section 8)."""
    lines = cache_words // line_words
    return lines * tag_bits
