"""Interconnect model: multichip module vs. printed circuit board.

The paper's premise (Section 2): at a 4 ns cycle, chip crossings dominate.
MCM substrates bond bare dies with 10-20 micron lines, cutting flight
distance and drive loading versus a PCB's ~1000 micron features, but even
on the MCM the propagation delay and loading "can contribute as much as
50 % to the overall access time" and grow with the cache's area (more
chips = longer lines + heavier loading).

This module reduces that physics to a calibrated two-parameter model per
mounting style::

    crossing_ns = base + load_factor * sqrt(chips)

``sqrt(chips)`` tracks the array's linear dimension (flight distance) and
its driver loading.  A cache access makes two crossings (address out, data
back).  The constants are calibrated so the derived cycle counts reproduce
the paper's numbers exactly (see :mod:`repro.tech.timing` and the ``tech``
experiment):

* 4-chip L1 on the MCM fits in the 4 ns CPU cycle (1-cycle read);
* 32-chip L2-I on the MCM reaches 2-cycle access;
* 128-chip BiCMOS L2 off the MCM reaches 6-cycle access (2 of which the
  paper attributes to tag checking and communication).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Mounting:
    """Interconnect environment for a cache array."""

    name: str
    #: Fixed per-crossing delay: pad, driver, and time of flight floor.
    base_crossing_ns: float
    #: Loading/distance growth per sqrt(chip count).
    load_factor_ns: float

    def crossing_ns(self, chips: int) -> float:
        """One chip-crossing delay for an array of ``chips`` parts."""
        if chips <= 0:
            raise ConfigurationError("chip count must be positive")
        return self.base_crossing_ns + self.load_factor_ns * math.sqrt(chips)

    def round_trip_ns(self, chips: int) -> float:
        """Address-out plus data-back: two crossings."""
        return 2.0 * self.crossing_ns(chips)


#: Bare dies on the multichip module: short lines, light loading.
MCM = Mounting(name="MCM", base_crossing_ns=0.2, load_factor_ns=0.05)

#: Packaged parts on the board, reached through the MCM connector.
PCB = Mounting(name="PCB", base_crossing_ns=1.6, load_factor_ns=0.28)


def interconnect_fraction(mounting: Mounting, chips: int,
                          sram_access_ns: float) -> float:
    """Fraction of a raw array access spent in interconnect.

    The paper quotes "as much as 50%" for large on-MCM arrays.
    """
    wire = mounting.round_trip_ns(chips)
    return wire / (wire + sram_access_ns)
