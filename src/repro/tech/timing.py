"""Deriving the simulator's cycle counts from the technology model.

The paper insists that "cache simulations must be tied to specific
technological implementations in order to yield meaningful results"
(Section 10).  This module closes that loop: every timing constant the
simulator uses — the 1-cycle L1 read, the 2-cycle on-MCM L2-I, the 6-cycle
off-MCM L2, the +1 cycle for 2-way associativity, the 143/237-cycle main
memory penalties — is *derived* here from SRAM datasheets, chip counts, the
MCM/PCB interconnect model, and a simple main-memory bus model, and checked
against the paper's quoted values by the ``tech`` experiment and the test
suite.

Access-time model::

    cycles = ceil((controller_ns + sram_ns + round_trip_wire_ns) / cycle_ns)
             (+1 cycle if 2-way set-associative)

The L1 caches carry no controller term: they are virtually indexed, so the
MMU checks their physical tags in parallel with the array read (Section 2).
L2 accesses include one controller/tag-sequencing term — the paper's
"two-cycle latency to account for L2-tag checking and communication delay"
emerges from this term plus the wire time.

Main-memory model::

    clean miss = bus latency + line_words * cycles_per_word
    dirty miss = clean miss + (line_words * cycles_per_word - overlap)

calibrated to the R6020 system-bus figures the paper uses (143 and 237
cycles for a 32 W line).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ConfigurationError
from repro.tech.mcm import MCM, PCB, Mounting
from repro.tech.sram import BICMOS_8KX8, GAAS_1KX32, SramPart, chips_needed

#: CPU cycle time: the 250 MHz target, just under 4 ns (Section 2).
CYCLE_NS = 4.0

#: One cycle of MMU tag-check/sequencing for secondary-cache accesses.
CONTROLLER_NS = 4.0


@dataclass(frozen=True)
class DerivedAccess:
    """A derived cache access time, with its provenance."""

    label: str
    cache_words: int
    part: SramPart
    mounting: Mounting
    chips: int
    wire_ns: float
    total_ns: float
    cycles: int


def derive_cache_access(label: str, cache_words: int, part: SramPart,
                        mounting: Mounting, ways: int = 1,
                        is_primary: bool = False,
                        cycle_ns: float = CYCLE_NS) -> DerivedAccess:
    """Derive a cache's access time in CPU cycles from the technology model.

    Args:
        label: human-readable name for reports.
        cache_words: array capacity in words.
        part: the SRAM product used.
        mounting: MCM or PCB interconnect environment.
        ways: associativity; each step beyond direct-mapped costs one cycle
            of way-select multiplexing (the Fig. 6 assumption).
        is_primary: primary caches omit the controller term (their tags are
            checked in the MMU in parallel with the array read).
    """
    if ways < 1:
        raise ConfigurationError("ways must be >= 1")
    chips = chips_needed(cache_words, part)
    wire_ns = mounting.round_trip_ns(chips)
    controller = 0.0 if is_primary else CONTROLLER_NS
    total_ns = controller + part.access_ns + wire_ns
    cycles = max(1, math.ceil(total_ns / cycle_ns))
    if ways > 1:
        cycles += int(math.log2(ways))
    return DerivedAccess(label=label, cache_words=cache_words, part=part,
                         mounting=mounting, chips=chips, wire_ns=wire_ns,
                         total_ns=total_ns, cycles=cycles)


@dataclass(frozen=True)
class MainMemoryModel:
    """Main memory behind the ECL system bus (R6020-class, [Tho90])."""

    latency_cycles: int = 47
    cycles_per_word: int = 3
    line_words: int = 32
    #: Cycles of bus setup a back-to-back write-back overlaps with the read.
    writeback_overlap_cycles: int = 2

    @property
    def clean_miss_cycles(self) -> int:
        """Fetch a line replacing a clean victim."""
        return self.latency_cycles + self.cycles_per_word * self.line_words

    @property
    def dirty_miss_cycles(self) -> int:
        """Fetch a line and write the dirty victim back."""
        writeback = (self.cycles_per_word * self.line_words
                     - self.writeback_overlap_cycles)
        return self.clean_miss_cycles + writeback


@dataclass(frozen=True)
class DerivedTiming:
    """Every simulator timing constant, derived from technology."""

    l1_read: DerivedAccess
    l2_unified: DerivedAccess
    l2_unified_2way: DerivedAccess
    l2i_on_mcm: DerivedAccess
    l2d_off_mcm: DerivedAccess
    memory: MainMemoryModel

    def rows(self) -> List[Sequence]:
        """Report rows: (component, chips, total ns, cycles)."""
        out: List[Sequence] = []
        for access in (self.l1_read, self.l2i_on_mcm, self.l2_unified,
                       self.l2_unified_2way, self.l2d_off_mcm):
            out.append([access.label, access.part.name,
                        access.mounting.name, access.chips,
                        round(access.total_ns, 2), access.cycles])
        return out


def derive_system_timing() -> DerivedTiming:
    """Derive the paper's machine: the numbers Section 2 and 7 quote."""
    return DerivedTiming(
        l1_read=derive_cache_access(
            "L1 (4KW)", 4 * 1024, GAAS_1KX32, MCM, is_primary=True),
        l2_unified=derive_cache_access(
            "unified L2 (256KW)", 256 * 1024, BICMOS_8KX8, PCB),
        l2_unified_2way=derive_cache_access(
            "unified L2 (256KW, 2-way)", 256 * 1024, BICMOS_8KX8, PCB,
            ways=2),
        l2i_on_mcm=derive_cache_access(
            "L2-I (32KW, on MCM)", 32 * 1024, GAAS_1KX32, MCM),
        l2d_off_mcm=derive_cache_access(
            "L2-D (256KW, off MCM)", 256 * 1024, BICMOS_8KX8, PCB),
        memory=MainMemoryModel(),
    )


def configs_from_technology():
    """Build the base and split-L2 system configurations with every timing
    constant taken from the derivation instead of hard-coded.

    Returns:
        ``(base, split)`` :class:`~repro.core.config.SystemConfig` pair;
        tests assert these equal the hand-written presets.
    """
    from dataclasses import replace

    from repro.core.config import base_architecture, split_l2_architecture

    timing = derive_system_timing()
    base = base_architecture()
    base = base.with_(
        name="base-derived",
        l2=replace(base.l2,
                   access_time=timing.l2_unified.cycles,
                   miss_penalty_clean=timing.memory.clean_miss_cycles,
                   miss_penalty_dirty=timing.memory.dirty_miss_cycles),
    )
    split = split_l2_architecture()
    split = split.with_(
        name="split-derived",
        l2=replace(split.l2,
                   access_time=timing.l2d_off_mcm.cycles,
                   i_access_time=timing.l2i_on_mcm.cycles,
                   miss_penalty_clean=timing.memory.clean_miss_cycles,
                   miss_penalty_dirty=timing.memory.dirty_miss_cycles),
    )
    base.validate()
    split.validate()
    return base, split


def paper_expectations() -> dict:
    """The values the paper quotes, used as the derivation's ground truth."""
    return {
        "l1_read_cycles": 1,
        "l2_unified_cycles": 6,
        "l2_unified_2way_cycles": 7,
        "l2i_on_mcm_cycles": 2,
        "l2d_off_mcm_cycles": 6,
        "clean_miss_cycles": 143,
        "dirty_miss_cycles": 237,
    }
