"""Technology substrate: SRAM parts, MCM interconnect, derived timing
and energy."""

from repro.tech.energy import (
    BICMOS_8KX8_ENERGY,
    GAAS_1KX32_ENERGY,
    MAIN_MEMORY_ENERGY,
    MCM_WIRE,
    PCB_WIRE,
    MainMemoryEnergy,
    SramEnergy,
    WireEnergy,
    sram_energy,
    wire_energy,
)
from repro.tech.mcm import MCM, PCB, Mounting, interconnect_fraction
from repro.tech.sram import (
    BICMOS_8KX8,
    GAAS_1KX32,
    SramPart,
    chips_needed,
    storage_bits,
    tag_storage_bits,
)
from repro.tech.timing import (
    CYCLE_NS,
    DerivedAccess,
    DerivedTiming,
    MainMemoryModel,
    configs_from_technology,
    derive_cache_access,
    derive_system_timing,
    paper_expectations,
)

__all__ = [
    "BICMOS_8KX8_ENERGY",
    "GAAS_1KX32_ENERGY",
    "MAIN_MEMORY_ENERGY",
    "MCM_WIRE",
    "PCB_WIRE",
    "MainMemoryEnergy",
    "SramEnergy",
    "WireEnergy",
    "sram_energy",
    "wire_energy",
    "MCM",
    "PCB",
    "Mounting",
    "interconnect_fraction",
    "BICMOS_8KX8",
    "GAAS_1KX32",
    "SramPart",
    "chips_needed",
    "storage_bits",
    "tag_storage_bits",
    "CYCLE_NS",
    "DerivedAccess",
    "DerivedTiming",
    "MainMemoryModel",
    "configs_from_technology",
    "derive_cache_access",
    "derive_system_timing",
    "paper_expectations",
]
