"""Energy constants for the technology substrate: parts, wires, memory.

The same physical description that gives the simulator its cycle counts
(:mod:`repro.tech.timing`) also determines energy: which SRAM part a cache
is built from, how many chips the array takes, and whether the wires that
reach it live on the MCM substrate or cross the board.  This module holds
the per-part and per-mounting energy constants and the small derivation
helpers; :mod:`repro.energy.model` assembles them into the per-event cost
vector the accountant applies.

The constants are assumption-level engineering numbers, not datasheet
reproductions (the paper reports no power figures), chosen to respect the
relationships that make the trade-off real:

* GaAs DCFL SRAMs are *static-power dominated*: the pull-down network
  conducts continuously, so a Vitesse-class 1Kx32 part dissipates on the
  order of a watt whether or not it is accessed.  Dynamic (per-access)
  energy is small.
* BiCMOS SRAMs are the opposite: modest static power, larger per-access
  energy (bigger array, higher capacitance, 10 ns of active current).
* Wires follow ``E = C * V^2``: an MCM line is ~10-20 microns wide and a
  few pF; a PCB trace through the module connector is tens of pF at a
  larger swing — two orders of magnitude per bit.

Like the timing model's ``base + load * sqrt(chips)`` crossing delay, the
wire energy grows with the array's linear dimension: more chips means
longer lines and heavier loading on every transfer.

Units: constants are picojoules (pJ) and milliwatts (mW); the derived
:class:`~repro.energy.model.EnergyModel` quantizes to integer femtojoules
(fJ) so energy accounting is exact integer arithmetic (1 pJ = 1000 fJ,
and 1 mW * 1 ns = 1 pJ).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.tech.mcm import MCM, PCB, Mounting
from repro.tech.sram import (
    BICMOS_8KX8,
    DATA_PATH_BITS,
    GAAS_1KX32,
    SramPart,
    chips_needed,
)


@dataclass(frozen=True)
class SramEnergy:
    """Per-part energy profile of one SRAM product.

    Attributes:
        part: the :class:`~repro.tech.sram.SramPart` this profile covers.
        read_pj_per_chip: dynamic energy of one read access, per chip in
            the active rank.
        write_pj_per_chip: dynamic energy of one write access, per chip.
        static_mw_per_chip: standby dissipation per chip; every chip of
            the array pays it every cycle, accessed or not.
    """

    part: SramPart
    read_pj_per_chip: float
    write_pj_per_chip: float
    static_mw_per_chip: float

    def __post_init__(self) -> None:
        if self.read_pj_per_chip <= 0 or self.write_pj_per_chip <= 0:
            raise ConfigurationError("SRAM access energy must be positive")
        if self.static_mw_per_chip < 0:
            raise ConfigurationError("SRAM static power cannot be negative")

    @property
    def rank_width(self) -> int:
        """Chips activated per access: the rank that spans the data path."""
        return math.ceil(DATA_PATH_BITS / self.part.bits)

    def read_pj(self) -> float:
        """Dynamic energy of one 32-bit read (the active rank switches)."""
        return self.rank_width * self.read_pj_per_chip

    def write_pj(self) -> float:
        """Dynamic energy of one 32-bit write."""
        return self.rank_width * self.write_pj_per_chip

    def static_mw(self, cache_words: int) -> float:
        """Standby power of a whole array of ``cache_words``."""
        return chips_needed(cache_words, self.part) * self.static_mw_per_chip


#: The 1Kx32 GaAs part: DCFL logic conducts continuously — about a watt of
#: standby per chip — while the small array keeps per-access energy low.
GAAS_1KX32_ENERGY = SramEnergy(part=GAAS_1KX32,
                               read_pj_per_chip=6.0,
                               write_pj_per_chip=7.0,
                               static_mw_per_chip=1150.0)

#: The 8Kx8 BiCMOS part: an order of magnitude less standby power, but a
#: 10 ns access through a larger array costs far more per read, and four
#: chips switch per 32-bit access.
BICMOS_8KX8_ENERGY = SramEnergy(part=BICMOS_8KX8,
                                read_pj_per_chip=55.0,
                                write_pj_per_chip=60.0,
                                static_mw_per_chip=90.0)

_PROFILES = {GAAS_1KX32.name: GAAS_1KX32_ENERGY,
             BICMOS_8KX8.name: BICMOS_8KX8_ENERGY}


def sram_energy(part: SramPart) -> SramEnergy:
    """The energy profile of a catalog part."""
    try:
        return _PROFILES[part.name]
    except KeyError:
        raise ConfigurationError(
            f"no energy profile for SRAM part {part.name!r} "
            f"(known: {', '.join(sorted(_PROFILES))})") from None


@dataclass(frozen=True)
class WireEnergy:
    """Per-bit transfer energy of a mounting style (``E = C * V^2``).

    Mirrors the timing model's two-parameter crossing delay: a fixed
    per-bit cost plus a loading term that grows with the array's linear
    dimension (``sqrt(chips)``).
    """

    mounting: Mounting
    base_pj_per_bit: float
    load_pj_per_bit: float

    def pj_per_bit(self, chips: int) -> float:
        """Energy to move one bit to/from an array of ``chips`` parts."""
        if chips <= 0:
            raise ConfigurationError("chip count must be positive")
        return self.base_pj_per_bit + self.load_pj_per_bit * math.sqrt(chips)

    def word_pj(self, chips: int, bits: int = DATA_PATH_BITS) -> float:
        """Energy to move one ``bits``-wide word."""
        return bits * self.pj_per_bit(chips)


#: Bare-die bonding on the substrate: ~1 pF lines at GaAs swings.
MCM_WIRE = WireEnergy(mounting=MCM, base_pj_per_bit=0.08,
                      load_pj_per_bit=0.02)

#: Packaged parts behind the module connector: tens of pF at full swing.
PCB_WIRE = WireEnergy(mounting=PCB, base_pj_per_bit=3.0,
                      load_pj_per_bit=0.8)

_WIRES = {MCM.name: MCM_WIRE, PCB.name: PCB_WIRE}


def wire_energy(mounting: Mounting) -> WireEnergy:
    """The wire-energy model of a mounting style."""
    try:
        return _WIRES[mounting.name]
    except KeyError:
        raise ConfigurationError(
            f"no wire-energy model for mounting {mounting.name!r} "
            f"(known: {', '.join(sorted(_WIRES))})") from None


@dataclass(frozen=True)
class MainMemoryEnergy:
    """Main memory behind the ECL system bus (R6020-class).

    A line fetch activates a DRAM page and streams the line over the
    backplane; a dirty-victim write-back streams the victim line back
    without a fresh activation (the paper's bus overlaps the setup).
    """

    #: DRAM page activation + ECL bus arbitration per access.
    activate_pj: float = 9000.0
    #: Per 32-bit word streamed over the backplane (ECL drivers).
    pj_per_word: float = 450.0

    def fetch_pj(self, line_words: int) -> float:
        """One line fetch from memory."""
        return self.activate_pj + line_words * self.pj_per_word

    def writeback_pj(self, line_words: int) -> float:
        """Streaming a dirty victim back (activation overlapped)."""
        return 0.5 * self.activate_pj + line_words * self.pj_per_word


#: The system's one main memory; per-line costs come from the L2 geometry.
MAIN_MEMORY_ENERGY = MainMemoryEnergy()

#: One L1 tag probe: the tags live on the MMU die, checked in parallel
#: with the array read — a small on-chip CAM/compare, not an SRAM access.
TAG_PROBE_PJ = 0.8

#: One TLB probe (on-MMU CAM lookup, both ports).
TLB_PROBE_PJ = 1.2

#: One TLB refill: the table walk's memory traffic, amortized.
TLB_REFILL_PJ = 2500.0

#: One write-buffer entry push/drain: queue bookkeeping and the CAM slice
#: the associative-bypass comparators need.
WB_ENTRY_PJ = 2.5
