"""Virtual memory: per-process address spaces and page-coloring allocation.

The target machine translates a PID-prefixed virtual address to a physical
address using *page coloring* [TDF90]: a virtual page is always mapped to a
physical frame whose low-order frame-number bits (the "color") equal the
corresponding virtual page-number bits.  This keeps the index bits of
physically-indexed caches identical under translation, so the simulator can
study cache behaviour on physical addresses while the L1 caches remain
virtually indexed / physically tagged without inconsistent synonyms
(paper, Sections 2 and 3).

Frames are allocated on first touch and never reclaimed — the paper models no
paging activity, and at simulation scale physical memory is unbounded.

To keep distinct processes from piling onto the same cache sets (their
virtual layouts are all alike), the allocator offsets each process's colors
by a PID-dependent stride, the page-coloring equivalent of the "bin hopping"
real colored allocators use.  Within a process, sequential virtual pages
still receive sequential colors, so contiguous regions never self-conflict
within the color span — the property page coloring exists to provide.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.params import MAX_PROCESSES, PAGE_WORDS, is_power_of_two

#: Default number of page colors.  256 colors x 4 KW pages = 1024 KW, enough
#: to keep index bits stable for every cache size the paper sweeps.
DEFAULT_COLORS = 256

#: PID stride for color bin-hopping (odd, so every color is reachable).
_PID_COLOR_STRIDE = 97


class PageTable:
    """Global first-touch frame allocator with page coloring.

    Attributes:
        colors: number of page colors (power of two).
    """

    def __init__(self, colors: int = DEFAULT_COLORS):
        if not is_power_of_two(colors):
            raise ConfigurationError("page color count must be a power of two")
        self.colors = colors
        self._map: Dict[Tuple[int, int], int] = {}
        self._next_in_color = [0] * colors

    def __len__(self) -> int:
        return len(self._map)

    @property
    def frames_allocated(self) -> int:
        """Total number of physical frames handed out."""
        return len(self._map)

    def translate_page(self, pid: int, vpage: int) -> int:
        """Map a (pid, virtual page) to its physical frame, allocating on miss."""
        if not 0 <= pid < MAX_PROCESSES:
            raise ConfigurationError(f"pid {pid} out of range")
        key = (pid, vpage)
        frame = self._map.get(key)
        if frame is None:
            color = (vpage + pid * _PID_COLOR_STRIDE) % self.colors
            frame = color + self.colors * self._next_in_color[color]
            self._next_in_color[color] += 1
            self._map[key] = frame
        return frame

    def translate(self, pid: int, word_addr: int) -> int:
        """Translate a single virtual word address to a physical word address."""
        vpage, offset = divmod(word_addr, PAGE_WORDS)
        return self.translate_page(pid, vpage) * PAGE_WORDS + offset

    def translate_batch(self, pid: int, word_addrs: np.ndarray) -> np.ndarray:
        """Vectorized translation of a batch of virtual word addresses.

        First-touch allocation happens in address order within the batch for
        pages not seen before, which is deterministic for a deterministic
        trace.
        """
        vpages = word_addrs // PAGE_WORDS
        offsets = word_addrs - vpages * PAGE_WORDS
        unique_pages, inverse = np.unique(vpages, return_inverse=True)
        frames = np.empty(len(unique_pages), dtype=np.int64)
        for i, vpage in enumerate(unique_pages):
            frames[i] = self.translate_page(pid, int(vpage))
        return frames[inverse] * PAGE_WORDS + offsets

    def color_of_frame(self, frame: int) -> int:
        """The color of a physical frame."""
        return frame % self.colors

    def reset(self) -> None:
        """Forget all mappings (fresh machine)."""
        self._map.clear()
        self._next_in_color = [0] * self.colors

    # ------------------------------------------------------------- robustness

    def state_dict(self) -> dict:
        """Exact snapshot of every mapping and allocator cursor."""
        return {
            "colors": self.colors,
            "map": [[pid, vpage, frame]
                    for (pid, vpage), frame in self._map.items()],
            "next_in_color": list(self._next_in_color),
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        from repro.errors import CheckpointError

        try:
            if int(state["colors"]) != self.colors:
                raise CheckpointError(
                    f"page-table snapshot has {state['colors']} colors, "
                    f"expected {self.colors}"
                )
            next_in_color = [int(n) for n in state["next_in_color"]]
            if len(next_in_color) != self.colors:
                raise CheckpointError(
                    "page-table snapshot cursor length mismatch")
            self._map = {(int(pid), int(vpage)): int(frame)
                         for pid, vpage, frame in state["map"]}
            self._next_in_color = next_in_color
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"malformed page-table snapshot: {exc}") from exc
