"""Translation lookaside buffers.

The MMU chip holds a 2-way set-associative, 32-entry instruction TLB and a
2-way set-associative, 64-entry data TLB (paper, Section 2).  Entries are
tagged with the PID so the TLB — like the caches — need not be flushed on a
context switch (Section 3).

Replacement is LRU within a set.  The simulator consults the TLB only when an
access crosses a page boundary relative to the previous access of the same
kind; a TLB object therefore also tracks how many references each probe
covers, so miss ratios can be reported per probe or per reference.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ConfigurationError
from repro.params import is_power_of_two


class TLB:
    """A PID-tagged set-associative TLB.

    Args:
        entries: total entry count (power of two).
        ways: associativity (power of two, <= entries).
        miss_penalty: CPU cycles charged per refill.
    """

    def __init__(self, entries: int, ways: int = 2, miss_penalty: int = 20):
        if not is_power_of_two(entries):
            raise ConfigurationError("TLB entry count must be a power of two")
        if not is_power_of_two(ways) or ways > entries:
            raise ConfigurationError("TLB ways must be a power of two <= entries")
        if miss_penalty < 0:
            raise ConfigurationError("TLB miss penalty must be non-negative")
        self.entries = entries
        self.ways = ways
        self.sets = entries // ways
        self.miss_penalty = miss_penalty
        # Each set is an MRU-ordered list of (pid, vpage) tags.
        self._sets: List[List[Tuple[int, int]]] = [[] for _ in range(self.sets)]
        self.probes = 0
        self.misses = 0

    def access(self, pid: int, vpage: int) -> bool:
        """Probe for (pid, vpage); refill on miss.  Returns True on a hit."""
        self.probes += 1
        index = vpage & (self.sets - 1)
        entry_set = self._sets[index]
        tag = (pid, vpage)
        try:
            position = entry_set.index(tag)
        except ValueError:
            self.misses += 1
            entry_set.insert(0, tag)
            if len(entry_set) > self.ways:
                entry_set.pop()
            return False
        if position:
            del entry_set[position]
            entry_set.insert(0, tag)
        return True

    def contains(self, pid: int, vpage: int) -> bool:
        """Non-mutating lookup (no LRU update, no counters)."""
        index = vpage & (self.sets - 1)
        return (pid, vpage) in self._sets[index]

    @property
    def miss_ratio(self) -> float:
        """Misses per probe."""
        return self.misses / self.probes if self.probes else 0.0

    def invalidate_pid(self, pid: int) -> int:
        """Drop all entries of one PID (process exit); returns entries dropped."""
        dropped = 0
        for entry_set in self._sets:
            kept = [tag for tag in entry_set if tag[0] != pid]
            dropped += len(entry_set) - len(kept)
            entry_set[:] = kept
        return dropped

    def flush(self) -> None:
        """Invalidate every entry (counters retained)."""
        for entry_set in self._sets:
            entry_set.clear()

    def reset_counters(self) -> None:
        """Zero the probe/miss counters."""
        self.probes = 0
        self.misses = 0

    # ------------------------------------------------------------- robustness

    def state_dict(self) -> dict:
        """Exact snapshot of entries (MRU order) and counters."""
        return {
            "sets": [[[pid, vpage] for pid, vpage in entry_set]
                     for entry_set in self._sets],
            "probes": self.probes,
            "misses": self.misses,
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        from repro.errors import CheckpointError

        try:
            sets = [[(int(pid), int(vpage)) for pid, vpage in entry_set]
                    for entry_set in state["sets"]]
            if len(sets) != self.sets:
                raise CheckpointError(
                    f"TLB snapshot has {len(sets)} sets, expected {self.sets}"
                )
            self._sets = sets
            self.probes = int(state["probes"])
            self.misses = int(state["misses"])
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed TLB snapshot: {exc}") from exc

    def check_invariants(self, name: str = "tlb") -> None:
        """Assert structural integrity; raises
        :class:`~repro.errors.StateCorruptionError` on violation."""
        from repro.errors import StateCorruptionError

        for index, entry_set in enumerate(self._sets):
            if len(entry_set) > self.ways:
                raise StateCorruptionError(
                    f"{name}: set {index} holds {len(entry_set)} entries, "
                    f"associativity is {self.ways}",
                    details={"structure": name, "set": index},
                )
            if len(set(entry_set)) != len(entry_set):
                raise StateCorruptionError(
                    f"{name}: duplicate entry in set {index}",
                    details={"structure": name, "set": index},
                )
            for _, vpage in entry_set:
                if (vpage & (self.sets - 1)) != index:
                    raise StateCorruptionError(
                        f"{name}: vpage {vpage:#x} stored in set {index} "
                        f"does not map there",
                        details={"structure": name, "set": index,
                                 "vpage": vpage},
                    )


def instruction_tlb(miss_penalty: int = 20) -> TLB:
    """The paper's instruction TLB: 2-way set-associative, 32 entries."""
    return TLB(entries=32, ways=2, miss_penalty=miss_penalty)


def data_tlb(miss_penalty: int = 20) -> TLB:
    """The paper's data TLB: 2-way set-associative, 64 entries."""
    return TLB(entries=64, ways=2, miss_penalty=miss_penalty)
