"""Memory-management substrate: page tables with coloring, and TLBs."""

from repro.mmu.page_table import DEFAULT_COLORS, PageTable
from repro.mmu.tlb import TLB, data_tlb, instruction_tlb

__all__ = ["DEFAULT_COLORS", "PageTable", "TLB", "data_tlb", "instruction_tlb"]
