"""Folding the event stream into energy: the accountant.

The simulator already counts every event the energy model prices — hits,
misses, refills, drains, victims, TLB walks, cycles — in
:class:`~repro.core.stats.SimStats`.  The accountant is the (exact,
integer) linear map from that counter vector to the per-class energy
fields of the same stats object:

====================  =====================================================
energy class          counted by
====================  =====================================================
``energy_l1i_fj``     ``instructions`` (fetch), ``l1i_misses`` (line fill)
``energy_l1d_fj``     ``loads``/``stores`` (access), ``l2d_accesses`` (fill)
``energy_l2_fj``      ``l2i_accesses``, ``l2d_accesses``,
                      ``l2_write_accesses``
``energy_bus_fj``     the same three — priced at the wire, not the array
``energy_wb_fj``      ``l2_write_accesses`` (entry bookkeeping)
``energy_mem_fj``     ``l2i/l2d/l2_write_misses`` (fetch) +
                      ``l2i/l2d/l2_write_dirty_victims`` (write-back)
``energy_tlb_fj``     ``itlb/dtlb_probes`` + ``itlb/dtlb_misses``
``energy_static_fj``  ``cycles``
====================  =====================================================

Because the map is linear and the weights are integers, two engines that
agree on the counters (the lockstep contract) agree on the energy *bit
for bit*, and :meth:`account` is idempotent — it overwrites rather than
accumulates, so both engines simply call it once per slice from their
epilogues.  That single call per slice is the entire runtime cost: the
batched engine's all-hit fast path accounts energy in bulk by
construction, and a run without a model never executes any of this.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.energy.model import (
    DEFAULT_TECHNOLOGY,
    EnergyModel,
    derive_energy_model,
)
from repro.errors import ConfigurationError

#: Report order of the energy classes (``SimStats.energy_breakdown_pj``).
ENERGY_CLASSES = ("l1i", "l1d", "l2", "bus", "wb", "mem", "tlb", "static")

ENERGY_CLASS_LABELS = {
    "l1i": "L1-I array",
    "l1d": "L1-D array",
    "l2": "L2 arrays",
    "bus": "interconnect",
    "wb": "write buffer",
    "mem": "main memory",
    "tlb": "TLB",
    "static": "static/leakage",
}


class EnergyAccountant:
    """Applies one :class:`EnergyModel` to a stats object, in place."""

    __slots__ = ("model",)

    def __init__(self, model: EnergyModel):
        self.model = model

    def account(self, st) -> None:
        """Set every ``energy_*`` field of ``st`` from its counters.

        Idempotent (pure function of the counters), so engines call it
        at every slice epilogue without ordering concerns; the sampler,
        ticking after the slice, always sees fresh totals.
        """
        m = self.model
        st.energy_l1i_fj = (st.instructions * m.l1i_fetch_fj
                            + st.l1i_misses * m.l1i_fill_fj)
        st.energy_l1d_fj = (st.loads * m.l1d_read_fj
                            + st.stores * m.l1d_write_fj
                            + st.l2d_accesses * m.l1d_fill_fj)
        st.energy_l2_fj = (st.l2i_accesses * m.l2i_access_fj
                           + st.l2d_accesses * m.l2d_access_fj
                           + st.l2_write_accesses * m.l2w_access_fj)
        st.energy_bus_fj = (st.l2i_accesses * m.bus_i_fill_fj
                            + st.l2d_accesses * m.bus_d_fill_fj
                            + st.l2_write_accesses * m.bus_drain_fj)
        st.energy_wb_fj = st.l2_write_accesses * m.wb_entry_fj
        st.energy_mem_fj = (
            (st.l2i_misses + st.l2d_misses + st.l2_write_misses)
            * m.mem_fetch_fj
            + (st.l2i_dirty_victims + st.l2d_dirty_victims
               + st.l2_write_dirty_victims) * m.mem_writeback_fj)
        st.energy_tlb_fj = ((st.itlb_probes + st.dtlb_probes)
                            * m.tlb_probe_fj
                            + (st.itlb_misses + st.dtlb_misses)
                            * m.tlb_refill_fj)
        st.energy_static_fj = st.cycles * m.static_fj_per_cycle


def resolve_accountant(energy, config) -> Optional[EnergyAccountant]:
    """Build the accountant for an ``energy=`` argument.

    Accepts ``None`` (accounting disabled), a technology name from
    :data:`~repro.energy.model.ENERGY_TECHNOLOGIES`, or a ready
    :class:`EnergyModel`.
    """
    if energy is None:
        return None
    if isinstance(energy, EnergyAccountant):
        return energy
    if isinstance(energy, EnergyModel):
        return EnergyAccountant(energy)
    if isinstance(energy, str):
        return EnergyAccountant(derive_energy_model(config, energy))
    raise ConfigurationError(
        f"energy must be None, a technology name, or an EnergyModel "
        f"(got {type(energy).__name__})")


def breakdown_pj(st) -> Dict[str, float]:
    """Per-class energy of a stats object, in picojoules."""
    return {cls: getattr(st, f"energy_{cls}_fj") / 1000.0
            for cls in ENERGY_CLASSES}


__all__ = ["ENERGY_CLASSES", "ENERGY_CLASS_LABELS", "EnergyAccountant",
           "resolve_accountant", "breakdown_pj", "DEFAULT_TECHNOLOGY"]
