"""The energy model: per-event costs derived from the technology substrate.

An :class:`EnergyModel` is a frozen vector of *integer femtojoule* costs,
one per class of memory-system event, derived from the same technology
description (:mod:`repro.tech`) that gives the simulator its cycle counts.
Integer costs are the load-bearing choice: total energy becomes an exact
integer linear function of the :class:`~repro.core.stats.SimStats` event
counters, so the reference and batched engines — which agree on every
counter by the lockstep contract — agree on every energy figure *exactly*,
and a disabled run (no model) is bit-identical to a run that predates the
subsystem.

A model is selected by technology name (:data:`ENERGY_TECHNOLOGIES`):

* ``"paper"`` — the machine the paper builds: GaAs L1 on the MCM, BiCMOS
  L2 on the board.  Fast and hot up close, slow and cool behind the
  connector.
* ``"all-gaas"`` — every array in GaAs on the MCM: the lowest-latency L2
  money can buy, paid for in watts of DCFL standby current.
* ``"bicmos"`` — every array in BiCMOS on the board: the frugal machine;
  the L1 arrays still cycle with the CPU (the clock is the CPU's), but
  everything beyond them is slow.

The ``pareto`` experiment sweeps these names against L2 geometry, deriving
*both* the timing (via :func:`repro.tech.timing.derive_cache_access`) and
the energy from each technology, which is what makes the CPI-vs-EPI
frontier a real trade-off rather than two decoupled columns.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Optional

from repro.errors import ConfigurationError
from repro.tech.energy import (
    MAIN_MEMORY_ENERGY,
    TAG_PROBE_PJ,
    TLB_PROBE_PJ,
    TLB_REFILL_PJ,
    WB_ENTRY_PJ,
    sram_energy,
    wire_energy,
)
from repro.tech.mcm import MCM, PCB, Mounting
from repro.tech.sram import (
    BICMOS_8KX8,
    DATA_PATH_BITS,
    GAAS_1KX32,
    SramPart,
    chips_needed,
)
from repro.tech.timing import CYCLE_NS

#: fJ per pJ; models are quantized to integer femtojoules.
FJ_PER_PJ = 1000.0


@dataclass(frozen=True)
class EnergyTechnology:
    """A technology point: which part and mounting build each level."""

    name: str
    l1_part: SramPart
    l1_mounting: Mounting
    l2_part: SramPart
    l2_mounting: Mounting


ENERGY_TECHNOLOGIES: Dict[str, EnergyTechnology] = {
    "paper": EnergyTechnology("paper", GAAS_1KX32, MCM, BICMOS_8KX8, PCB),
    "all-gaas": EnergyTechnology("all-gaas", GAAS_1KX32, MCM,
                                 GAAS_1KX32, MCM),
    "bicmos": EnergyTechnology("bicmos", BICMOS_8KX8, PCB,
                               BICMOS_8KX8, PCB),
}

#: The technology the paper's machine is built in.
DEFAULT_TECHNOLOGY = "paper"


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energy costs, integer femtojoules.

    Every field is the complete cost of one countable event — array
    switching, tag probes, and the wire crossings the event implies —
    except the bus transfers, which are kept in their own fields so the
    accountant can report interconnect energy as its own class (the MCM
    premise of the paper is exactly that wires matter).
    """

    technology: str

    # L1 arrays (per access / per line fill).
    l1i_fetch_fj: int
    l1d_read_fj: int
    l1d_write_fj: int
    l1i_fill_fj: int
    l1d_fill_fj: int

    # L2 arrays (per access, way probes included).
    l2i_access_fj: int
    l2d_access_fj: int
    l2w_access_fj: int

    # Interconnect between L1 and L2 (per refill line / per drain).
    bus_i_fill_fj: int
    bus_d_fill_fj: int
    bus_drain_fj: int

    # Write buffer bookkeeping (per entry pushed).
    wb_entry_fj: int

    # Main memory (per L2 miss / per dirty victim written back).
    mem_fetch_fj: int
    mem_writeback_fj: int

    # TLBs (per probe / per refill walk).
    tlb_probe_fj: int
    tlb_refill_fj: int

    # Standby dissipation of every array, per CPU cycle.
    static_fj_per_cycle: int

    def params(self) -> Dict[str, Any]:
        """Canonical JSON-able identity: technology name + every cost.

        This dict participates in farm/serve/grid content-address keys,
        so a cached result can never be served across a change to the
        model's constants — the key moves with the physics.
        """
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_params(cls, params: Dict[str, Any]) -> "EnergyModel":
        """Rebuild a model from :meth:`params` output."""
        known = {f.name for f in fields(cls)}
        unknown = set(params) - known
        if unknown:
            raise ConfigurationError(
                f"unknown EnergyModel field(s): "
                f"{', '.join(sorted(unknown))}")
        missing = known - set(params)
        if missing:
            raise ConfigurationError(
                f"EnergyModel params missing field(s): "
                f"{', '.join(sorted(missing))}")
        return cls(**params)

    def describe(self) -> Dict[str, float]:
        """Costs in pJ, for reports."""
        return {f.name: getattr(self, f.name) / FJ_PER_PJ
                for f in fields(self) if f.name != "technology"}


def _fj(pj: float) -> int:
    return int(round(pj * FJ_PER_PJ))


def resolve_technology(name: str) -> EnergyTechnology:
    """Look up a technology by name; raises ``ConfigurationError``."""
    try:
        return ENERGY_TECHNOLOGIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown energy technology {name!r} "
            f"(available: {', '.join(sorted(ENERGY_TECHNOLOGIES))})"
        ) from None


def derive_energy_model(config, technology: str = DEFAULT_TECHNOLOGY
                        ) -> "EnergyModel":
    """Derive the per-event cost vector for one machine configuration.

    Args:
        config: the :class:`~repro.core.config.SystemConfig` under test
            (geometry decides chip counts, line lengths, words moved).
        technology: a :data:`ENERGY_TECHNOLOGIES` name.

    The derivation mirrors :func:`repro.tech.timing.derive_cache_access`:
    chips from geometry, wire costs from mounting and chip count, array
    costs from the part's profile.  Write-buffer drains move one word
    under the write-through policies and a victim line under write-back
    (that is what the policies push), so the drain costs depend on the
    configured policy the same way the drain *timing* does.
    """
    tech = resolve_technology(technology)
    l1 = sram_energy(tech.l1_part)
    l2 = sram_energy(tech.l2_part)
    l1_wire = wire_energy(tech.l1_mounting)
    l2_wire = wire_energy(tech.l2_mounting)

    icache, dcache, l2cfg = config.icache, config.dcache, config.l2
    i_chips = chips_needed(icache.size_words, tech.l1_part)
    d_chips = chips_needed(dcache.size_words, tech.l1_part)
    l2i_chips = chips_needed(l2cfg.effective_i_size, tech.l2_part)
    l2d_chips = chips_needed(l2cfg.effective_d_size, tech.l2_part)

    # One L1 access: MMU tag probe in parallel with the array rank, plus
    # the word crossing the MCM (or board) once in each direction.
    i_word = l1_wire.word_pj(i_chips)
    d_word = l1_wire.word_pj(d_chips)
    l2i_word = l2_wire.word_pj(l2i_chips)
    l2d_word = l2_wire.word_pj(l2d_chips)

    # An L2 access probes every way's tags and reads one way's rank.
    ways_probe = l2cfg.ways * TAG_PROBE_PJ

    # Write-through drains push single words; write-back pushes victim
    # lines (see evict_victim_write_back vs the store handlers).
    drain_words = (1 if config.write_policy.is_write_through
                   else dcache.line_words)

    # Standby power of every array the machine carries, per CPU cycle
    # (1 mW * 1 ns = 1 pJ).  Split L2s carry both sides' chips.
    static_chips_mw = (l1.static_mw_per_chip * (i_chips + d_chips)
                       + l2.static_mw_per_chip * (l2i_chips + l2d_chips
                                                  if l2cfg.split
                                                  else l2d_chips))
    static_pj_per_cycle = static_chips_mw * CYCLE_NS / 1000.0

    mem = MAIN_MEMORY_ENERGY
    return EnergyModel(
        technology=tech.name,
        l1i_fetch_fj=_fj(TAG_PROBE_PJ + l1.read_pj() + i_word),
        l1d_read_fj=_fj(TAG_PROBE_PJ + l1.read_pj() + d_word),
        l1d_write_fj=_fj(TAG_PROBE_PJ + l1.write_pj() + d_word),
        l1i_fill_fj=_fj(icache.line_words * (l1.write_pj() + i_word)),
        l1d_fill_fj=_fj(dcache.line_words * (l1.write_pj() + d_word)),
        l2i_access_fj=_fj(ways_probe + l2.read_pj()),
        l2d_access_fj=_fj(ways_probe + l2.read_pj()),
        l2w_access_fj=_fj(ways_probe + l2.write_pj()),
        bus_i_fill_fj=_fj(icache.line_words * l2i_word),
        bus_d_fill_fj=_fj(dcache.line_words * l2d_word),
        bus_drain_fj=_fj(drain_words * l2d_word),
        wb_entry_fj=_fj(WB_ENTRY_PJ),
        mem_fetch_fj=_fj(mem.fetch_pj(l2cfg.line_words)),
        mem_writeback_fj=_fj(mem.writeback_pj(l2cfg.line_words)),
        tlb_probe_fj=_fj(TLB_PROBE_PJ),
        tlb_refill_fj=_fj(TLB_REFILL_PJ),
        static_fj_per_cycle=_fj(static_pj_per_cycle),
    )


def energy_spec(energy: Optional[object]) -> Optional[str]:
    """The serializable identity of an ``energy=`` argument.

    ``None`` stays ``None``; a technology name stays itself; an
    :class:`EnergyModel` collapses to its technology name (models are
    derived deterministically from configuration + technology, so the
    name is sufficient to rebuild it).
    """
    if energy is None:
        return None
    if isinstance(energy, str):
        resolve_technology(energy)  # validate eagerly
        return energy
    if isinstance(energy, EnergyModel):
        return energy.technology
    raise ConfigurationError(
        f"energy must be None, a technology name, or an EnergyModel "
        f"(got {type(energy).__name__})")
