"""repro.energy: per-event energy accounting for the simulated machine.

The second metric axis next to CPI.  An :class:`EnergyModel` prices every
class of memory-system event in integer femtojoules, derived from the same
technology substrate (:mod:`repro.tech`) that prices them in cycles; an
:class:`EnergyAccountant` folds the simulator's event counters into
per-class energy totals and an energy-per-instruction (EPI) figure carried
on :class:`~repro.core.stats.SimStats`.

Enable it anywhere a simulation is specified::

    from repro import base_architecture, default_suite, simulate

    stats = simulate(base_architecture(), default_suite(100_000),
                     energy="paper")
    print(f"EPI = {stats.epi_pj:.1f} pJ/instr", stats.energy_breakdown_pj())

or ``repro-experiments fig4 --energy paper``, or ``"energy": "paper"`` in
a ``/v1/simulate`` request.  With no model selected the subsystem costs
nothing and changes nothing: every energy field stays zero and runs are
bit-identical to an energy-free build.
"""

from repro.energy.accounting import (
    ENERGY_CLASSES,
    ENERGY_CLASS_LABELS,
    EnergyAccountant,
    breakdown_pj,
    resolve_accountant,
)
from repro.energy.model import (
    DEFAULT_TECHNOLOGY,
    ENERGY_TECHNOLOGIES,
    EnergyModel,
    EnergyTechnology,
    derive_energy_model,
    energy_spec,
    resolve_technology,
)

__all__ = [
    "ENERGY_CLASSES",
    "ENERGY_CLASS_LABELS",
    "ENERGY_TECHNOLOGIES",
    "DEFAULT_TECHNOLOGY",
    "EnergyAccountant",
    "EnergyModel",
    "EnergyTechnology",
    "breakdown_pj",
    "derive_energy_model",
    "energy_spec",
    "resolve_accountant",
    "resolve_technology",
]
