"""The ``repro-experiments run`` / ``validate`` subcommands.

``run`` executes one scenario file (plus overlays) through the generic
driver inside a farm session bound to the scenario's ``scenario_sha256``;
``validate`` resolves and checks a scenario without simulating anything,
printing the effective-config diff against its base and the hash the
farm/journal/serve layers will see.  Both are routed from
:func:`repro.experiments.runner.main`, so they inherit its
:func:`~repro.errors.cli_errors` behaviour — schema problems are one
:class:`~repro.errors.ConfigurationError` line on stderr and a non-zero
exit, never a traceback.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.farm.context import farm_session
from repro.farm.telemetry import RunTelemetry
from repro.robust.atomic import atomic_write_text
from repro.scenario.document import diff_documents
from repro.scenario.driver import run_scenario
from repro.scenario.resolve import ResolvedScenario, resolve_scenario


def _scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("scenario", type=Path,
                        help="scenario file (.toml or .json)")
    parser.add_argument("--overlay", type=Path, action="append",
                        default=[], metavar="FILE",
                        help="overlay file merged on top (repeatable; "
                             "later overlays win)")


def build_run_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments run",
        description="Run one scenario file through the generic driver.")
    _scenario_args(parser)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the scenario's sweep "
                             "points (default %(default)s; results are "
                             "identical at any value)")
    parser.add_argument("--nodes", type=str, default=None,
                        metavar="URL[,URL...]",
                        help="distribute sweep points over these "
                             "repro-serve backends (comma-separated)")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="content-addressed result cache root")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the sweep-point result cache")
    parser.add_argument("--journal", type=Path, default=None, metavar="DIR",
                        help="write-ahead run journal directory "
                             "(crash-resumable exactly-once; needs the "
                             "cache)")
    parser.add_argument("--out", type=Path, default=None,
                        help="directory to also write the report")
    parser.add_argument("--chart", action="store_true",
                        help="draw an ASCII chart of the result")
    parser.add_argument("--manifest", type=Path, default=None,
                        help="write run telemetry to this JSON file")
    return parser


def build_validate_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments validate",
        description="Resolve and check a scenario without running it.")
    _scenario_args(parser)
    return parser


def _describe(resolved: ResolvedScenario) -> List[str]:
    lines = [f"scenario: {resolved.name}"]
    if resolved.description:
        lines.append(f"description: {resolved.description}")
    lines.append(f"experiment: {resolved.experiment or '(generic sweep)'}")
    lines.append(f"engine: {resolved.engine}")
    if resolved.energy is not None:
        lines.append(f"energy: {resolved.energy}")
    scale = resolved.scale
    lines.append(
        f"workload: {scale.instructions_per_benchmark:,} instr/bench, "
        f"level {scale.level}, slice {scale.time_slice:,}, "
        f"warmup {scale.warmup_fraction}")
    if resolved.axes:
        axes = ", ".join(f"{name}[{len(values)}]"
                         for name, values in resolved.axes.items())
        lines.append(f"sweep: {resolved.sweep_mode} over {axes}")
    lines.append(f"scenario_sha256: {resolved.scenario_sha256}")
    return lines


def cmd_validate(argv: Optional[List[str]] = None) -> int:
    """``repro-experiments validate <scenario> [--overlay FILE ...]``."""
    args = build_validate_parser().parse_args(argv)
    resolved = resolve_scenario(args.scenario, args.overlay)
    if resolved.experiment is not None:
        # Check axes against the experiment's declaration too, exactly
        # as `run` would — a validate pass must mean the run will start.
        from repro.scenario.driver import bind_params

        import repro.experiments.runner  # noqa: F401  (fills REGISTRY)

        bind_params(resolved, resolved.experiment)
    for line in _describe(resolved):
        print(line)
    if resolved.base_document is not None:
        diff = diff_documents(resolved.base_document, resolved.document)
        print(f"diff vs base ({len(diff)} change"
              f"{'' if len(diff) == 1 else 's'}):")
        for line in diff:
            print(f"  {line}")
    else:
        print("diff vs base: (standalone document; no extends or "
              "overlays)")
    print("ok")
    return 0


def cmd_run(argv: Optional[List[str]] = None) -> int:
    """``repro-experiments run <scenario> [--overlay FILE ...]``."""
    from repro.experiments.runner import clamp_jobs

    args = build_run_parser().parse_args(argv)
    resolved = resolve_scenario(args.scenario, args.overlay)
    if args.journal is not None and args.no_cache:
        print("--journal requires the result cache (drop --no-cache)",
              file=sys.stderr)
        return 2
    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2
    jobs, clamp_warning = clamp_jobs(args.jobs)
    if clamp_warning is not None:
        print(f"[warning: {clamp_warning}]", file=sys.stderr)
    nodes = None
    if args.nodes:
        nodes = [u.strip() for u in args.nodes.split(",") if u.strip()]
        if not nodes:
            print("--nodes needs at least one backend URL",
                  file=sys.stderr)
            return 2
    telemetry = RunTelemetry()
    started = time.time()
    with farm_session(jobs=jobs, cache_dir=args.cache_dir,
                      no_cache=args.no_cache, telemetry=telemetry,
                      nodes=nodes, journal=args.journal,
                      engine=resolved.engine, energy=resolved.energy,
                      scenario=resolved.scenario_sha256):
        result = run_scenario(resolved)
    report = result.render()
    if args.chart:
        from repro.analysis.ascii_plot import chart_for_result

        drawn = chart_for_result(result)
        if drawn is not None:
            report = f"{report}\n\n{drawn}"
    print(report)
    print(f"[{resolved.name} completed in {time.time() - started:.1f}s]\n")
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        atomic_write_text(args.out / f"{resolved.name}.txt", report + "\n")
    print(f"[farm: {telemetry.format_summary()}]")
    if args.manifest is not None:
        telemetry.write_manifest(args.manifest)
    return 0
