"""Scenario documents as plain data: load, merge, canonicalize, hash.

This module knows nothing about machines or sweeps — it treats a scenario
as a nested dict of scalars, lists, and tables, and provides the four
operations the rest of the subsystem is built on:

* :func:`load_document` — parse a ``.toml`` or ``.json`` file (stdlib
  parsers only) into a plain dict, every failure a
  :class:`~repro.errors.ConfigurationError` naming the file.
* :func:`deep_merge` — overlay composition.  Tables merge recursively,
  every other value replaces, and the :data:`DELETE` sentinel removes a
  key outright (how an overlay disables a section the base declared).
* :func:`canonical_json` / :func:`scenario_sha256` — one byte-exact
  encoding (sorted keys, no whitespace) so the hash of a resolved
  document is stable across dict ordering, TOML-vs-JSON source, and
  Python versions.
* :func:`flatten_document` / :func:`diff_documents` — dotted-path views
  for the ``validate`` CLI's effective-config diff.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List

from repro.errors import ConfigurationError

#: Overlay sentinel: assign this string to a key to delete it from the
#: merged document (``icache = "__delete__"`` in TOML).
DELETE = "__delete__"


def load_document(path) -> Dict[str, Any]:
    """Parse a scenario file (``.toml`` or ``.json``) into a plain dict.

    Raises :class:`~repro.errors.ConfigurationError` — never a bare
    parser exception — for a missing file, an unsupported suffix, a
    syntax error, or a non-table top level.
    """
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix not in (".toml", ".json"):
        raise ConfigurationError(
            f"{path}: unsupported scenario format {suffix!r} "
            "(use .toml or .json)")
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise ConfigurationError(f"cannot read scenario {path}: "
                                 f"{exc.strerror or exc}") from exc
    if suffix == ".toml":
        import tomllib

        try:
            doc = tomllib.loads(raw.decode("utf-8"))
        except (tomllib.TOMLDecodeError, UnicodeDecodeError) as exc:
            raise ConfigurationError(f"{path}: invalid TOML: {exc}") from exc
    else:
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ConfigurationError(f"{path}: invalid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise ConfigurationError(
            f"{path}: scenario document must be a table/object at the "
            "top level")
    return doc


def _prune(value: Any) -> Any:
    """Strip :data:`DELETE` markers out of a fresh (non-merged) subtree."""
    if isinstance(value, dict):
        return {k: _prune(v) for k, v in value.items() if v != DELETE}
    return value


def deep_merge(base: Dict[str, Any],
               overlay: Dict[str, Any]) -> Dict[str, Any]:
    """Merge ``overlay`` onto ``base``, returning a new document.

    Semantics (property-tested in ``tests/test_scenario_merge.py``):

    * table onto table — recurse, key by key.
    * anything else — the overlay value replaces the base value (a list
      replaces wholesale; axes are atoms, not merge targets).
    * :data:`DELETE` — the key is removed from the result.  A DELETE for
      a key the base never had is a no-op, which is what makes merge
      idempotent and composable.

    Neither input is mutated.
    """
    out: Dict[str, Any] = {}
    for key, value in base.items():
        out[key] = value
    for key, value in overlay.items():
        if value == DELETE:
            out.pop(key, None)
        elif (isinstance(value, dict) and key in out
                and isinstance(out[key], dict)):
            out[key] = deep_merge(out[key], value)
        else:
            out[key] = _prune(value)
    return out


def canonical_json(doc: Dict[str, Any]) -> str:
    """The one true byte encoding of a resolved document.

    Sorted keys, no whitespace, ASCII-safe escapes — so the same logical
    document always encodes to the same bytes regardless of key order,
    source format, or platform.  Non-JSON-serializable values (which the
    schema layer should have rejected already) raise
    :class:`~repro.errors.ConfigurationError`, not ``TypeError``.
    """
    try:
        return json.dumps(doc, sort_keys=True, separators=(",", ":"),
                          ensure_ascii=True)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"scenario document is not canonicalizable: {exc}") from exc


def scenario_sha256(doc: Dict[str, Any]) -> str:
    """SHA-256 of the document's canonical JSON encoding.

    This is the scenario's identity everywhere downstream: it joins the
    farm cache key (:func:`repro.farm.cache.point_payload`), the durable
    journal's ``run_open`` metadata, and serve's wire protocol.
    """
    return hashlib.sha256(canonical_json(doc).encode("utf-8")).hexdigest()


def flatten_document(doc: Dict[str, Any],
                     prefix: str = "") -> Dict[str, Any]:
    """Leaf values of a nested document, keyed by dotted path."""
    flat: Dict[str, Any] = {}
    for key, value in doc.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            if value:
                flat.update(flatten_document(value, path))
            else:
                flat[path] = value
        else:
            flat[path] = value
    return flat


def diff_documents(base: Dict[str, Any],
                   resolved: Dict[str, Any]) -> List[str]:
    """Dotted-path diff lines between two documents.

    ``+ path = value`` for additions, ``- path`` for removals,
    ``~ path: old -> new`` for changes — the ``validate`` CLI's
    effective-config view.  Sorted by path; empty when identical.
    """
    flat_base = flatten_document(base)
    flat_new = flatten_document(resolved)
    lines: List[str] = []
    for path in sorted(set(flat_base) | set(flat_new)):
        if path not in flat_base:
            lines.append(f"+ {path} = {flat_new[path]!r}")
        elif path not in flat_new:
            lines.append(f"- {path}")
        elif flat_base[path] != flat_new[path]:
            lines.append(f"~ {path}: {flat_base[path]!r} -> "
                         f"{flat_new[path]!r}")
    return lines
