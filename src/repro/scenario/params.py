"""The bound view of a scenario an experiment function receives.

Experiments no longer own module-level grid constants; they take a
:class:`ScenarioParams` carrying the base machine and the named sweep
axes the scenario declared.  ``repro-experiments fig5`` and
``repro-experiments run scenarios/fig5.toml`` both end up here — the
former by resolving the committed scenario file as defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.core.config import SystemConfig
from repro.core.serialization import did_you_mean
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ScenarioParams:
    """Machine + sweep axes, resolved and validated, for one experiment."""

    #: Base machine every grid point derives from.
    machine: SystemConfig
    #: Named sweep axes (``axis name -> tuple of values``); what the
    #: experiment's axes declaration promised is present.
    axes: Dict[str, Tuple[Any, ...]] = field(default_factory=dict)
    #: Identity of the resolved document these params came from; binds
    #: every point the experiment runs to the scenario's cache namespace.
    scenario_sha256: Optional[str] = None

    def axis(self, name: str) -> Tuple[Any, ...]:
        """The values of one named axis; loud about typos."""
        if name not in self.axes:
            raise ConfigurationError(
                f"scenario declares no sweep axis {name!r}"
                f"{did_you_mean(name, self.axes)}; "
                f"declared axes: {', '.join(sorted(self.axes)) or 'none'}")
        return self.axes[name]
