"""Declarative scenario documents: machine + workload + sweep in one file.

A *scenario* is a TOML (or JSON) document that declares everything an
experiment run needs — the machine (:class:`~repro.core.config.SystemConfig`
fields), the workload scale, the simulation engine, the energy technology,
and the sweep grid — so a figure is reproduced from a committed file
instead of constants baked into a Python module::

    repro-experiments run scenarios/fig5.toml
    repro-experiments run scenarios/fig5.toml --overlay quick.toml
    repro-experiments validate scenarios/fig5.toml

Scenarios compose: a document may ``extends`` a base file, and the CLI
may stack overlay files on top; overlays are deep-merged left to right
with an explicit :data:`~repro.scenario.document.DELETE` sentinel for
removals.  The fully resolved document is canonicalized and hashed into
``scenario_sha256``, which joins the farm's content-addressed cache key,
the durable journal's run records, and the serve wire protocol — the
same scenario file is bit-identically reproducible locally, across
``--jobs``, across ``--nodes``, and across ``--journal`` resume.
"""

from repro.scenario.document import (
    DELETE,
    canonical_json,
    deep_merge,
    diff_documents,
    flatten_document,
    load_document,
    scenario_sha256,
)
from repro.scenario.params import ScenarioParams
from repro.scenario.resolve import ResolvedScenario, resolve_scenario
from repro.scenario.driver import (
    builtin_scenario_path,
    default_params,
    expand_grid,
    run_scenario,
    scenario_dir,
)

__all__ = [
    "DELETE",
    "ResolvedScenario",
    "ScenarioParams",
    "builtin_scenario_path",
    "canonical_json",
    "deep_merge",
    "default_params",
    "diff_documents",
    "expand_grid",
    "flatten_document",
    "load_document",
    "resolve_scenario",
    "run_scenario",
    "scenario_dir",
]
