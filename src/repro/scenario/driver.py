"""Run a resolved scenario: bind it to an experiment, or sweep generically.

Two execution shapes:

* ``scenario.experiment = "fig5"`` — the document drives a *registered*
  experiment.  :func:`bind_params` checks the declared sweep axes
  against what the experiment's ``@register(axes=...)`` promised, and
  the experiment function receives a
  :class:`~repro.scenario.params.ScenarioParams`.
* no ``experiment`` key — a *generic* sweep: every axis name is a dotted
  document path (``machine.dcache.size_kw``, ``workload.level``) and
  the grid is expanded point by point over the base document.

This module also owns the *default params* lookup: a registered
experiment invoked the legacy way (``repro-experiments fig5``) resolves
``scenarios/fig5.toml`` for its grid, which is what makes the committed
scenario files the single source of truth for every figure.
"""

from __future__ import annotations

import itertools
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.core.serialization import did_you_mean
from repro.errors import ConfigurationError
from repro.scenario.params import ScenarioParams
from repro.scenario.resolve import ResolvedScenario, resolve_scenario

#: Environment override for the committed scenario directory (tests point
#: this at fixtures; workers inherit it across fork/spawn).
SCENARIO_DIR_ENV = "REPRO_SCENARIO_DIR"


def scenario_dir() -> Path:
    """The directory holding the committed per-experiment scenarios."""
    override = os.environ.get(SCENARIO_DIR_ENV)
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[3] / "scenarios"


def builtin_scenario_path(experiment_id: str) -> Path:
    """The committed scenario file for a registered experiment."""
    return scenario_dir() / f"{experiment_id}.toml"


_DEFAULT_CACHE: Dict[Tuple[str, str], ScenarioParams] = {}


def default_params(experiment_id: str) -> ScenarioParams:
    """Resolve the committed scenario for an experiment id (memoized).

    ``repro-experiments fig5`` lands here: the legacy invocation path
    and ``repro-experiments run scenarios/fig5.toml`` resolve the same
    document, so they share one ``scenario_sha256`` — and therefore one
    cache namespace and bit-identical reports.
    """
    key = (experiment_id, str(scenario_dir()))
    if key in _DEFAULT_CACHE:
        return _DEFAULT_CACHE[key]
    path = builtin_scenario_path(experiment_id)
    if not path.exists():
        raise ConfigurationError(
            f"no committed scenario for experiment {experiment_id!r} "
            f"(expected {path}); set {SCENARIO_DIR_ENV} or add the file")
    resolved = resolve_scenario(path)
    if resolved.experiment != experiment_id:
        raise ConfigurationError(
            f"{path} declares scenario.experiment = "
            f"{resolved.experiment!r}, expected {experiment_id!r}")
    params = bind_params(resolved, experiment_id)
    _DEFAULT_CACHE[key] = params
    return params


def bind_params(resolved: ResolvedScenario,
                experiment_id: str) -> ScenarioParams:
    """Check a scenario's axes against an experiment's declaration.

    The experiment's ``@register(axes=...)`` names the axes it consumes;
    the scenario must declare exactly those — a missing axis would crash
    mid-run, an extra one would be silently ignored (the worst failure
    mode for a config file), so both are errors here, up front.
    """
    from repro.experiments.common import EXPERIMENT_AXES

    expected = set(EXPERIMENT_AXES.get(experiment_id, ()))
    declared = set(resolved.axes)
    # Report unknown axes before missing ones: a typo'd axis name produces
    # both, and the did-you-mean suggestion is the actionable message.
    unknown = declared - expected
    if unknown:
        first = sorted(unknown)[0]
        raise ConfigurationError(
            f"scenario {resolved.name!r} declares sweep axes unknown to "
            f"experiment {experiment_id!r}: {', '.join(sorted(unknown))}"
            f"{did_you_mean(first, expected)}; expected axes: "
            f"{', '.join(sorted(expected)) or 'none'}")
    missing = expected - declared
    if missing:
        raise ConfigurationError(
            f"scenario {resolved.name!r} is missing sweep axes required "
            f"by experiment {experiment_id!r}: "
            f"{', '.join(sorted(missing))}")
    return ScenarioParams(machine=resolved.machine, axes=dict(resolved.axes),
                          scenario_sha256=resolved.scenario_sha256)


def expand_grid(axes: Dict[str, Tuple[Any, ...]],
                mode: str = "product") -> List[Dict[str, Any]]:
    """Expand named axes into grid points, in declaration order.

    ``product`` crosses every axis (first axis outermost); ``zip`` walks
    them in lockstep (equal lengths enforced at validation).
    """
    if not axes:
        return []
    names = list(axes)
    if mode == "zip":
        lengths = {len(values) for values in axes.values()}
        if len(lengths) > 1:
            raise ConfigurationError(
                "zip sweep needs equal-length axes")
        return [dict(zip(names, combo))
                for combo in zip(*(axes[n] for n in names))]
    return [dict(zip(names, combo))
            for combo in itertools.product(*(axes[n] for n in names))]


def _set_path(doc: Dict[str, Any], dotted: str, value: Any) -> None:
    parts = dotted.split(".")
    node = doc
    for part in parts[:-1]:
        node = node.setdefault(part, {})
        if not isinstance(node, dict):
            raise ConfigurationError(
                f"sweep axis {dotted!r} descends through non-table "
                f"key {part!r}")
    node[parts[-1]] = value


def _generic_sweep(resolved: ResolvedScenario):
    """Sweep dotted-path axes over the base document, one run per point."""
    import copy

    from repro.experiments.common import ExperimentResult, run_system
    from repro.scenario.resolve import _build

    for name in resolved.axes:
        root = name.split(".", 1)[0]
        if root not in ("machine", "workload"):
            raise ConfigurationError(
                f"generic sweep axis {name!r} must start with 'machine.' "
                "or 'workload.' (or set scenario.experiment to drive a "
                "registered experiment)")
    points = expand_grid(resolved.axes, resolved.sweep_mode)
    headers = [*resolved.axes, "CPI", "memory CPI"]
    rows: List[List[Any]] = []
    for assignment in points or [{}]:
        doc = copy.deepcopy(resolved.document)
        for dotted, value in assignment.items():
            _set_path(doc, dotted, value)
        point = _build(doc, None)
        stats = run_system(point.machine, point.scale)
        cpi = stats.cpi(point.machine.cpu_stall_cpi)
        rows.append([*assignment.values(), round(cpi, 3),
                     round(stats.memory_cpi, 3)])
    return ExperimentResult(
        experiment_id=resolved.name,
        title=resolved.description or "scenario sweep",
        headers=headers,
        rows=rows,
        notes=f"generic sweep over {', '.join(resolved.axes) or 'nothing'} "
              f"({resolved.sweep_mode} mode)",
    )


def run_scenario(resolved: ResolvedScenario, scale=None):
    """Execute a resolved scenario; returns an ``ExperimentResult``.

    The caller owns the surrounding :func:`~repro.farm.context.
    farm_session` (jobs, cache, nodes, journal, and the scenario's
    ``scenario_sha256``); this function only decides *what* to run.
    """
    if resolved.experiment is None:
        return _generic_sweep(resolved)
    from repro.experiments import experiment_registry

    registry = experiment_registry()
    if resolved.experiment not in registry:
        raise ConfigurationError(
            f"scenario {resolved.name!r} names unknown experiment "
            f"{resolved.experiment!r}"
            f"{did_you_mean(resolved.experiment, registry)}; "
            f"available: {', '.join(sorted(registry))}")
    params = bind_params(resolved, resolved.experiment)
    return registry[resolved.experiment](scale if scale is not None
                                         else resolved.scale,
                                         params=params)
