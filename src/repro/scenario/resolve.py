"""Scenario resolution: extends chain + overlays -> one validated object.

Resolution order (later wins)::

    base chain (scenario.extends, recursively)  <-  scenario file  <-
    overlay files, left to right

The fully merged document is validated against the real dataclasses
(:mod:`repro.scenario.schema`), canonicalized with ``scenario.extends``
stripped (the *content* identifies a scenario, not the file layout it
was assembled from), and hashed into ``scenario_sha256``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.core.config import SystemConfig, base_architecture
from repro.core.engine import DEFAULT_ENGINE
from repro.errors import ConfigurationError
from repro.scenario.document import deep_merge, load_document
from repro.scenario.document import scenario_sha256 as _sha256
from repro.scenario.schema import validate_document

#: Cap on ``extends`` chain depth; generous next to the base + figure
#: layout the repository ships, tight enough to fail fast on cycles that
#: evade the exact-path check (e.g. via symlinks).
_MAX_EXTENDS_DEPTH = 16


@dataclass(frozen=True)
class ResolvedScenario:
    """A scenario document after extends/overlay composition."""

    name: str
    description: str
    #: Registered experiment id this scenario drives, or ``None`` for a
    #: generic (dotted-axis) sweep.
    experiment: Optional[str]
    machine: SystemConfig
    scale: "Any"  # ExperimentScale; typed loosely to avoid an import cycle
    engine: str
    energy: Optional[str]
    sweep_mode: str
    axes: Dict[str, Tuple[Any, ...]]
    #: SHA-256 of the canonical resolved document; the identity that
    #: joins cache keys, journals, and the serve protocol.
    scenario_sha256: str
    #: The canonical resolved document itself.
    document: Dict[str, Any]
    #: What this scenario was composed *onto* (the resolved extends
    #: chain), for the ``validate`` CLI's diff; ``None`` when the file
    #: stands alone with no overlays.
    base_document: Optional[Dict[str, Any]]


def _strip_extends(doc: Dict[str, Any]) -> Dict[str, Any]:
    if "extends" not in doc.get("scenario", {}):
        return doc
    out = dict(doc)
    out["scenario"] = {k: v for k, v in doc["scenario"].items()
                       if k != "extends"}
    return out


def _resolve_chain(path: Path,
                   seen: Tuple[Path, ...] = ()) -> Tuple[Dict[str, Any],
                                                         Optional[Dict]]:
    """Load ``path`` and merge it onto its (recursive) extends base.

    Returns ``(merged, base)`` where ``base`` is the resolved parent
    chain (``None`` for a root document).
    """
    path = path.resolve()
    if path in seen:
        chain = " -> ".join(str(p) for p in (*seen, path))
        raise ConfigurationError(f"scenario extends cycle: {chain}")
    if len(seen) >= _MAX_EXTENDS_DEPTH:
        raise ConfigurationError(
            f"scenario extends chain deeper than {_MAX_EXTENDS_DEPTH} "
            f"at {path}")
    doc = load_document(path)
    extends = doc.get("scenario", {}).get("extends") \
        if isinstance(doc.get("scenario"), dict) else None
    if extends is None:
        return doc, None
    if not isinstance(extends, str):
        raise ConfigurationError(
            f"{path}: scenario.extends must be a string path")
    base_path = (path.parent / extends).resolve()
    base, _ = _resolve_chain(base_path, (*seen, path))
    return deep_merge(_strip_extends(base), _strip_extends(doc)), base


def resolve_scenario(path,
                     overlays: Sequence = ()) -> ResolvedScenario:
    """Resolve a scenario file (plus CLI overlays) into one object.

    Overlay files are plain documents merged on top, left to right; they
    may not themselves ``extends`` anything (composition is the CLI's
    job, not the overlay's).  The result is validated, canonicalized,
    and hashed.
    """
    path = Path(path)
    merged, chain_base = _resolve_chain(path)
    base_doc = chain_base
    for overlay_path in overlays:
        overlay = load_document(overlay_path)
        if isinstance(overlay.get("scenario"), dict) \
                and "extends" in overlay["scenario"]:
            raise ConfigurationError(
                f"{overlay_path}: overlays may not use scenario.extends "
                "(stack multiple --overlay flags instead)")
        if base_doc is None:
            base_doc = merged  # diff overlays against the bare file
        merged = deep_merge(merged, overlay)
    doc = _strip_extends(merged)
    validate_document(doc)
    return _build(doc, base_doc and _strip_extends(base_doc))


def _build(doc: Dict[str, Any],
           base_doc: Optional[Dict[str, Any]]) -> ResolvedScenario:
    from repro.core.serialization import config_from_dict
    from repro.experiments.common import DEFAULT_SCALE, ExperimentScale

    meta = doc["scenario"]
    machine = (config_from_dict(doc["machine"], path="machine")
               if "machine" in doc else base_architecture())
    workload = doc.get("workload", {})
    scale = ExperimentScale(
        instructions_per_benchmark=workload.get(
            "instructions_per_benchmark",
            DEFAULT_SCALE.instructions_per_benchmark),
        level=workload.get("level", DEFAULT_SCALE.level),
        time_slice=workload.get("time_slice", DEFAULT_SCALE.time_slice),
        warmup_fraction=workload.get("warmup_fraction",
                                     DEFAULT_SCALE.warmup_fraction),
    )
    sweep = doc.get("sweep", {})
    axes = {name: tuple(values)
            for name, values in sweep.get("axes", {}).items()}
    return ResolvedScenario(
        name=meta["name"],
        description=meta.get("description", ""),
        experiment=meta.get("experiment"),
        machine=machine,
        scale=scale,
        engine=doc.get("engine", {}).get("name", DEFAULT_ENGINE),
        energy=doc.get("energy", {}).get("technology"),
        sweep_mode=sweep.get("mode", "product"),
        axes=axes,
        scenario_sha256=_sha256(doc),
        document=doc,
        base_document=base_doc,
    )
