"""Scenario document validation against the real dataclasses.

A scenario that passes :func:`validate_document` resolves into objects
the simulator itself constructs — ``[machine]`` goes through
:func:`repro.core.serialization.config_from_dict` (which runs
``SystemConfig.validate``), ``[workload]`` becomes an
:class:`~repro.experiments.common.ExperimentScale`, and engine/energy
names are checked against the live registries.  Every rejection is a
:class:`~repro.errors.ConfigurationError` naming the full dotted path of
the offending key, with a nearest-valid-key suggestion.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.core.engine import ENGINE_NAMES
from repro.core.serialization import did_you_mean, unknown_key_error
from repro.errors import ConfigurationError

#: Top-level tables a scenario document may contain.
TOP_KEYS = ("scenario", "machine", "workload", "engine", "energy", "sweep")

_SCENARIO_KEYS = ("name", "description", "experiment", "extends")
_WORKLOAD_KEYS = ("instructions_per_benchmark", "level", "time_slice",
                  "warmup_fraction")
_SWEEP_KEYS = ("mode", "axes")
_SWEEP_MODES = ("product", "zip")


def _require_table(doc: Dict[str, Any], key: str) -> Dict[str, Any]:
    value = doc.get(key)
    if not isinstance(value, dict):
        raise ConfigurationError(f"'{key}' must be a table, got "
                                 f"{type(value).__name__}")
    return value


def _check_keys(section: Dict[str, Any], path: str, valid) -> None:
    unknown = set(section) - set(valid)
    if unknown:
        raise unknown_key_error(path, unknown, valid)


def _validate_scenario_section(doc: Dict[str, Any]) -> None:
    section = _require_table(doc, "scenario")
    _check_keys(section, "scenario", _SCENARIO_KEYS)
    if not isinstance(section.get("name"), str) or not section["name"]:
        raise ConfigurationError(
            "scenario.name must be a non-empty string")
    for key in ("description", "experiment", "extends"):
        if key in section and not isinstance(section[key], str):
            raise ConfigurationError(f"scenario.{key} must be a string")


def _validate_workload(doc: Dict[str, Any]) -> None:
    if "workload" not in doc:
        return
    section = _require_table(doc, "workload")
    _check_keys(section, "workload", _WORKLOAD_KEYS)
    for key in ("instructions_per_benchmark", "level", "time_slice"):
        if key in section:
            value = section[key]
            if (not isinstance(value, int) or isinstance(value, bool)
                    or value < 1):
                raise ConfigurationError(
                    f"workload.{key} must be a positive integer, got "
                    f"{value!r}")
    if "warmup_fraction" in section:
        value = section["warmup_fraction"]
        if (not isinstance(value, (int, float)) or isinstance(value, bool)
                or not 0.0 <= float(value) < 1.0):
            raise ConfigurationError(
                "workload.warmup_fraction must be a number in [0, 1), "
                f"got {value!r}")


def _validate_engine(doc: Dict[str, Any]) -> None:
    if "engine" not in doc:
        return
    section = _require_table(doc, "engine")
    _check_keys(section, "engine", ("name",))
    name = section.get("name")
    if not isinstance(name, str) or name not in ENGINE_NAMES:
        raise ConfigurationError(
            f"unknown engine.name {name!r}"
            f"{did_you_mean(str(name), ENGINE_NAMES)}; "
            f"available engines: {', '.join(ENGINE_NAMES)}")


def _validate_energy(doc: Dict[str, Any]) -> None:
    if "energy" not in doc:
        return
    from repro.energy import ENERGY_TECHNOLOGIES  # deferred: heavy layer

    section = _require_table(doc, "energy")
    _check_keys(section, "energy", ("technology",))
    tech = section.get("technology")
    if tech is None:
        # An empty [energy] table (e.g. technology removed by an overlay's
        # delete sentinel) means no energy accounting, same as no table.
        return
    if not isinstance(tech, str) or tech not in ENERGY_TECHNOLOGIES:
        raise ConfigurationError(
            f"unknown energy.technology {tech!r}"
            f"{did_you_mean(str(tech), ENERGY_TECHNOLOGIES)}; "
            f"available technologies: "
            f"{', '.join(sorted(ENERGY_TECHNOLOGIES))}")


def _is_scalar(value: Any) -> bool:
    return isinstance(value, (str, int, float, bool))


def _validate_axis(name: str, values: Any) -> None:
    path = f"sweep.axes.{name}"
    if not isinstance(values, list) or not values:
        raise ConfigurationError(
            f"{path} must be a non-empty list of axis values")
    if all(_is_scalar(v) for v in values):
        return
    if all(isinstance(v, dict) for v in values):
        for v in values:
            bad = [k for k, item in v.items() if not _is_scalar(item)]
            if bad:
                raise ConfigurationError(
                    f"{path} table values must map keys to scalars "
                    f"(offending key: {bad[0]!r})")
        return
    raise ConfigurationError(
        f"{path} must be a list of scalars or a list of tables, not a "
        "mixture")


def _validate_sweep(doc: Dict[str, Any]) -> None:
    if "sweep" not in doc:
        return
    section = _require_table(doc, "sweep")
    _check_keys(section, "sweep", _SWEEP_KEYS)
    mode = section.get("mode", "product")
    if mode not in _SWEEP_MODES:
        raise ConfigurationError(
            f"unknown sweep.mode {mode!r}"
            f"{did_you_mean(str(mode), _SWEEP_MODES)}; "
            f"valid modes: {', '.join(_SWEEP_MODES)}")
    axes = section.get("axes")
    if not isinstance(axes, dict) or not axes:
        raise ConfigurationError(
            "sweep.axes must be a non-empty table of axis-name -> list")
    for name, values in axes.items():
        _validate_axis(name, values)
    if mode == "zip":
        lengths = {name: len(values) for name, values in axes.items()}
        if len(set(lengths.values())) > 1:
            detail = ", ".join(f"{name}={n}"
                               for name, n in sorted(lengths.items()))
            raise ConfigurationError(
                f"sweep.mode = 'zip' needs equal-length axes ({detail})")


def validate_document(doc: Dict[str, Any]) -> None:
    """Validate a fully merged scenario document; raises on any defect.

    Called at resolve time (after extends/overlay composition) so a typo
    in an overlay is caught even when the base was fine.  ``[machine]``
    is validated by actually constructing the
    :class:`~repro.core.config.SystemConfig`, so there is exactly one
    source of truth for what a machine is.
    """
    _check_keys(doc, "", TOP_KEYS)
    if "scenario" not in doc:
        raise ConfigurationError(
            "scenario document needs a [scenario] table with at least "
            "'name'")
    _validate_scenario_section(doc)
    if "machine" in doc:
        from repro.core.serialization import config_from_dict

        machine = _require_table(doc, "machine")
        config_from_dict(machine, path="machine")
    _validate_workload(doc)
    _validate_engine(doc)
    _validate_energy(doc)
    _validate_sweep(doc)
