"""A simulated process: a PID, a trace source, and translated batches.

The paper's simulator multiplexes per-benchmark trace pipes through file
descriptors; here each :class:`Process` pulls batches from its trace source,
translates them to physical addresses through the shared page table (page
coloring preserves cache index bits), and hands the simulator plain Python
lists — the fastest thing to iterate in the hot loop.

Every batch is validated before it reaches the hot loop: a corrupt trace
record (unknown access kind, negative address, mismatched column lengths)
either raises :class:`~repro.errors.TraceError` (``trace_errors="raise"``,
the default) or is dropped and counted (``trace_errors="skip"``) — never
silently executed, since the hot loop would misaccount it as a store.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import SchedulingError, TraceError
from repro.mmu.page_table import PageTable
from repro.params import MAX_PROCESSES
from repro.trace.record import KIND_STORE, TraceBatch
from repro.trace.stream import TraceSource


class PreparedBatch:
    """One trace batch, physically translated and converted to lists."""

    __slots__ = ("pcs", "kinds", "addrs", "partials", "syscalls", "dropped",
                 "np_cols")

    def __init__(self, pcs: List[int], kinds: List[int], addrs: List[int],
                 partials: List[bool], syscalls: List[bool],
                 dropped: int = 0, np_cols=None):
        self.pcs = pcs
        self.kinds = kinds
        self.addrs = addrs
        self.partials = partials
        self.syscalls = syscalls
        #: Malformed records dropped during preparation (skip mode only).
        self.dropped = dropped
        #: Optional ``(pcs, kinds, addrs, syscalls)`` as NumPy arrays —
        #: the same columns before list conversion.  The batched engine
        #: builds its per-batch index from these without re-converting;
        #: the scalar engines ignore them.
        self.np_cols = np_cols

    def __len__(self) -> int:
        return len(self.pcs)

    @staticmethod
    def from_batch(batch: TraceBatch, pid: int, page_table: PageTable,
                   trace_errors: str = "raise") -> "PreparedBatch":
        """Translate a virtual-address batch into physical lists.

        Args:
            batch: the raw virtual-address batch.
            pid: owning process id (page-table key).
            page_table: shared translation state.
            trace_errors: ``"raise"`` rejects a corrupt batch with
                :class:`~repro.errors.TraceError`; ``"skip"`` drops the
                offending records and counts them in ``dropped``.
        """
        if trace_errors not in ("raise", "skip"):
            raise TraceError(f"unknown trace_errors mode {trace_errors!r}")
        dropped = 0
        if trace_errors == "raise":
            batch.validate()
        else:
            columns = (batch.pc, batch.kind, batch.addr, batch.partial,
                       batch.syscall)
            n = min(len(column) for column in columns)
            if any(len(column) != n for column in columns):
                # Truncated batch: keep the records every column still has.
                dropped += len(batch.pc) - n
                batch = TraceBatch(pc=batch.pc[:n], kind=batch.kind[:n],
                                   addr=batch.addr[:n],
                                   partial=batch.partial[:n],
                                   syscall=batch.syscall[:n])
            bad = batch.invalid_mask()
            bad_rows = int(np.count_nonzero(bad))
            if bad_rows:
                dropped += bad_rows
                batch = batch[~bad]
        pc_phys = page_table.translate_batch(pid, batch.pc)
        addr_phys = page_table.translate_batch(pid, batch.addr)
        return PreparedBatch(
            pcs=pc_phys.tolist(),
            kinds=batch.kind.tolist(),
            addrs=addr_phys.tolist(),
            partials=batch.partial.tolist(),
            syscalls=batch.syscall.tolist(),
            dropped=dropped,
            np_cols=(pc_phys, batch.kind, addr_phys, batch.syscall),
        )


class Process:
    """Execution state of one benchmark within the multiprogrammed mix."""

    def __init__(self, pid: int, name: str, source: TraceSource,
                 page_table: PageTable, trace_errors: str = "raise"):
        if not 0 <= pid < MAX_PROCESSES:
            raise SchedulingError(f"pid {pid} out of range")
        if trace_errors not in ("raise", "skip"):
            raise SchedulingError(
                f"unknown trace_errors mode {trace_errors!r}")
        self.pid = pid
        self.name = name
        self.source = source
        self.page_table = page_table
        self.trace_errors = trace_errors
        self._batch: Optional[PreparedBatch] = None
        self._pos = 0
        self.instructions_executed = 0
        self.finished = False
        #: Malformed trace records dropped so far (skip mode).
        self.records_skipped = 0
        # Source state captured immediately before the current batch was
        # pulled; replaying it regenerates the identical batch on resume.
        self._pre_batch_state: Optional[dict] = None

    def current(self) -> Tuple[Optional[PreparedBatch], int]:
        """The batch/offset to execute next, pulling a new batch if needed.

        Returns ``(None, 0)`` once the process's trace is exhausted.
        """
        if self.finished:
            return None, 0
        if self._batch is None or self._pos >= len(self._batch):
            snapshot = (self.source.state_dict()
                        if hasattr(self.source, "state_dict") else None)
            raw = self.source.next_batch()
            if raw is None or len(raw) == 0:
                self.finished = True
                self._batch = None
                self._pre_batch_state = None
                return None, 0
            self._pre_batch_state = snapshot
            self._batch = PreparedBatch.from_batch(raw, self.pid,
                                                   self.page_table,
                                                   self.trace_errors)
            self.records_skipped += self._batch.dropped
            self._pos = 0
            if len(self._batch) == 0:
                # Every record of the batch was corrupt and dropped.
                return self.current()
        return self._batch, self._pos

    def advance(self, consumed: int) -> None:
        """Record that ``consumed`` instructions of the current batch ran."""
        if consumed < 0:
            raise SchedulingError("consumed must be non-negative")
        self._pos += consumed
        self.instructions_executed += consumed
        if self._batch is not None and self._pos > len(self._batch):
            raise SchedulingError("advanced past the end of the batch")

    # ------------------------------------------------------------- robustness

    def state_dict(self) -> dict:
        """Snapshot sufficient to resume this process bit-identically.

        An in-flight batch is not serialized; instead the source state
        captured *before* the batch was pulled travels, and resume replays
        the pull (deterministic trace generation plus an already-populated
        page table reproduce the identical prepared batch).
        """
        from repro.errors import CheckpointError

        if not hasattr(self.source, "state_dict"):
            raise CheckpointError(
                f"trace source of process {self.name!r} "
                f"({type(self.source).__name__}) does not support "
                f"checkpointing (no state_dict)"
            )
        has_batch = self._batch is not None
        return {
            "pid": self.pid,
            "name": self.name,
            "finished": self.finished,
            "instructions_executed": self.instructions_executed,
            "records_skipped": self.records_skipped,
            "pos": self._pos,
            "has_batch": has_batch,
            "source": (self._pre_batch_state if has_batch
                       else self.source.state_dict()),
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot.

        The shared page table must already be restored: re-translating the
        regenerated in-flight batch is then a pure lookup, yielding the
        identical physical addresses.
        """
        from repro.errors import CheckpointError

        try:
            if int(state["pid"]) != self.pid or state["name"] != self.name:
                raise CheckpointError(
                    f"process snapshot identity mismatch: snapshot is for "
                    f"pid {state['pid']} ({state['name']!r}), this process "
                    f"is pid {self.pid} ({self.name!r})"
                )
            self.finished = bool(state["finished"])
            self.instructions_executed = int(state["instructions_executed"])
            self.records_skipped = int(state["records_skipped"])
            self.source.load_state(state["source"])
            self._batch = None
            self._pos = 0
            self._pre_batch_state = None
            if state["has_batch"] and not self.finished:
                self._pre_batch_state = state["source"]
                raw = self.source.next_batch()
                if raw is None or len(raw) == 0:
                    raise CheckpointError(
                        f"process {self.name!r} snapshot expects an in-flight "
                        f"batch but the source produced none"
                    )
                self._batch = PreparedBatch.from_batch(raw, self.pid,
                                                       self.page_table,
                                                       self.trace_errors)
                # The skipped count already includes this batch's drops.
                self._pos = int(state["pos"])
                if self._pos > len(self._batch):
                    raise CheckpointError(
                        f"process {self.name!r} snapshot position "
                        f"{self._pos} exceeds the regenerated batch length "
                        f"{len(self._batch)}"
                    )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"malformed process snapshot: {exc}") from exc
