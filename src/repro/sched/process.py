"""A simulated process: a PID, a trace source, and translated batches.

The paper's simulator multiplexes per-benchmark trace pipes through file
descriptors; here each :class:`Process` pulls batches from its trace source,
translates them to physical addresses through the shared page table (page
coloring preserves cache index bits), and hands the simulator plain Python
lists — the fastest thing to iterate in the hot loop.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import SchedulingError
from repro.mmu.page_table import PageTable
from repro.params import MAX_PROCESSES
from repro.trace.record import TraceBatch
from repro.trace.stream import TraceSource


class PreparedBatch:
    """One trace batch, physically translated and converted to lists."""

    __slots__ = ("pcs", "kinds", "addrs", "partials", "syscalls")

    def __init__(self, pcs: List[int], kinds: List[int], addrs: List[int],
                 partials: List[bool], syscalls: List[bool]):
        self.pcs = pcs
        self.kinds = kinds
        self.addrs = addrs
        self.partials = partials
        self.syscalls = syscalls

    def __len__(self) -> int:
        return len(self.pcs)

    @staticmethod
    def from_batch(batch: TraceBatch, pid: int,
                   page_table: PageTable) -> "PreparedBatch":
        """Translate a virtual-address batch into physical lists."""
        pc_phys = page_table.translate_batch(pid, batch.pc)
        addr_phys = page_table.translate_batch(pid, batch.addr)
        return PreparedBatch(
            pcs=pc_phys.tolist(),
            kinds=batch.kind.tolist(),
            addrs=addr_phys.tolist(),
            partials=batch.partial.tolist(),
            syscalls=batch.syscall.tolist(),
        )


class Process:
    """Execution state of one benchmark within the multiprogrammed mix."""

    def __init__(self, pid: int, name: str, source: TraceSource,
                 page_table: PageTable):
        if not 0 <= pid < MAX_PROCESSES:
            raise SchedulingError(f"pid {pid} out of range")
        self.pid = pid
        self.name = name
        self.source = source
        self.page_table = page_table
        self._batch: Optional[PreparedBatch] = None
        self._pos = 0
        self.instructions_executed = 0
        self.finished = False

    def current(self) -> Tuple[Optional[PreparedBatch], int]:
        """The batch/offset to execute next, pulling a new batch if needed.

        Returns ``(None, 0)`` once the process's trace is exhausted.
        """
        if self.finished:
            return None, 0
        if self._batch is None or self._pos >= len(self._batch):
            raw = self.source.next_batch()
            if raw is None or len(raw) == 0:
                self.finished = True
                self._batch = None
                return None, 0
            self._batch = PreparedBatch.from_batch(raw, self.pid,
                                                   self.page_table)
            self._pos = 0
        return self._batch, self._pos

    def advance(self, consumed: int) -> None:
        """Record that ``consumed`` instructions of the current batch ran."""
        if consumed < 0:
            raise SchedulingError("consumed must be non-negative")
        self._pos += consumed
        self.instructions_executed += consumed
        if self._batch is not None and self._pos > len(self._batch):
            raise SchedulingError("advanced past the end of the batch")
