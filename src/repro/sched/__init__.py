"""Multiprogramming substrate: processes and the round-robin scheduler."""

from repro.sched.process import PreparedBatch, Process
from repro.sched.scheduler import Scheduler

__all__ = ["PreparedBatch", "Process", "Scheduler"]
