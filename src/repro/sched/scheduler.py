"""Round-robin multiprogramming scheduler (paper, Section 3).

The paper's workload model: a configurable number of processes run
concurrently (the multiprogramming level); a context switch is scheduled when
a process executes a voluntary system call or when its time slice (500,000
cycles by default) elapses; the next process is picked round-robin; when a
benchmark terminates, the next benchmark in order is started; the run ends
when every benchmark has terminated.

Caches and TLBs are PID-tagged, so nothing is flushed on a switch — the cache
interference between processes arises purely from capacity and conflict.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Sequence

from repro.core.hierarchy import (
    REASON_END,
    REASON_SLICE,
    REASON_SYSCALL,
    MemorySystem,
)
from repro.core.stats import SimStats  # noqa: F401 (used for attribution)
from repro.errors import SchedulingError
from repro.params import DEFAULT_TIME_SLICE
from repro.sched.process import Process


class Scheduler:
    """Drives a :class:`MemorySystem` with a multiprogrammed workload.

    Args:
        memsys: the memory system under test.
        processes: benchmarks, in admission order.
        time_slice: cycles per slice before a forced context switch.
        level: multiprogramming level — how many processes are runnable at
            once.  Defaults to all of them.
    """

    def __init__(self, memsys: MemorySystem, processes: Sequence[Process],
                 time_slice: int = DEFAULT_TIME_SLICE,
                 level: Optional[int] = None,
                 track_per_process: bool = False):
        if time_slice <= 0:
            raise SchedulingError("time slice must be positive")
        if not processes:
            raise SchedulingError("at least one process is required")
        if level is not None and level <= 0:
            raise SchedulingError("multiprogramming level must be positive")
        self.memsys = memsys
        self.time_slice = time_slice
        self.level = level or len(processes)
        self._pending: Deque[Process] = deque(processes)
        self._ready: Deque[Process] = deque()
        self.context_switches = 0
        self.instructions_run = 0
        #: Per-process activity attribution (slice-granular snapshots of the
        #: shared statistics); enabled by ``track_per_process``.
        self.track_per_process = track_per_process
        self.process_stats: dict = {p.name: SimStats() for p in processes}
        self._admit()

    def _admit(self) -> None:
        while self._pending and len(self._ready) < self.level:
            self._ready.append(self._pending.popleft())

    @property
    def done(self) -> bool:
        """True once every process has terminated."""
        return not self._ready and not self._pending

    def run_one_slice(self) -> str:
        """Run the process at the head of the ready queue for one slice.

        Returns the reason the slice ended (``syscall``, ``slice``, or
        ``terminated``).
        """
        if self.done:
            raise SchedulingError("no runnable processes")
        memsys = self.memsys
        process = self._ready[0]
        deadline = memsys.now + self.time_slice
        snapshot = memsys.stats.copy() if self.track_per_process else None
        reason = REASON_END
        while True:
            batch, pos = process.current()
            if batch is None:
                reason = "terminated"
                break
            result = memsys.run_slice(batch.pcs, batch.kinds, batch.addrs,
                                      batch.partials, batch.syscalls,
                                      pos, deadline)
            process.advance(result.consumed)
            self.instructions_run += result.consumed
            if result.reason != REASON_END:
                reason = result.reason
                break
            # Batch exhausted mid-slice: continue with the next batch.
        if snapshot is not None:
            self.process_stats[process.name].add(
                memsys.stats.diff(snapshot))
        self._ready.popleft()
        if reason == "terminated":
            self._admit()
        else:
            self._ready.append(process)
        # A context switch means another process takes the CPU next; a
        # lone process rotating back to itself does not count.
        if self._ready and self._ready[0] is not process:
            self.context_switches += 1
            self.memsys.stats.context_switches += 1
        return reason

    def run(self, max_instructions: Optional[int] = None,
            warmup_instructions: int = 0) -> SimStats:
        """Run until every benchmark terminates (or a budget is hit).

        Args:
            max_instructions: optional global instruction budget.
            warmup_instructions: statistics are cleared (caches kept warm)
                after this many instructions, to exclude cold-start effects
                from short reproduction runs.

        Returns:
            the memory system's statistics object.
        """
        warmed = warmup_instructions <= 0
        while not self.done:
            self.run_one_slice()
            if not warmed and self.instructions_run >= warmup_instructions:
                self.memsys.clear_stats()
                if self.track_per_process:
                    self.process_stats = {name: SimStats()
                                          for name in self.process_stats}
                warmed = True
            if (max_instructions is not None
                    and self.instructions_run >= max_instructions):
                break
        return self.memsys.stats

    @property
    def ready_processes(self) -> List[Process]:
        """The runnable processes, head of queue first."""
        return list(self._ready)
