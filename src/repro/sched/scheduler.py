"""Round-robin multiprogramming scheduler (paper, Section 3).

The paper's workload model: a configurable number of processes run
concurrently (the multiprogramming level); a context switch is scheduled when
a process executes a voluntary system call or when its time slice (500,000
cycles by default) elapses; the next process is picked round-robin; when a
benchmark terminates, the next benchmark in order is started; the run ends
when every benchmark has terminated.

Caches and TLBs are PID-tagged, so nothing is flushed on a switch — the cache
interference between processes arises purely from capacity and conflict.

Robustness hooks (see :mod:`repro.robust`): an optional *auditor* observes
every executed slice and periodically asserts state invariants, and
:meth:`Scheduler.run` accepts an ``on_slice`` callback used by the
checkpointing driver to snapshot the run at slice boundaries.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Sequence

from repro.core.hierarchy import (
    REASON_END,
    REASON_SLICE,
    REASON_SYSCALL,
    MemorySystem,
)
from repro.core.stats import SimStats  # noqa: F401 (used for attribution)
from repro.errors import SchedulingError
from repro.obs import runtime as _obs
from repro.params import DEFAULT_TIME_SLICE
from repro.sched.process import Process


class Scheduler:
    """Drives a :class:`MemorySystem` with a multiprogrammed workload.

    Args:
        memsys: the memory system under test.
        processes: benchmarks, in admission order.
        time_slice: cycles per slice before a forced context switch.
        level: multiprogramming level — how many processes are runnable at
            once.  Defaults to all of them.
        auditor: optional runtime invariant auditor
            (:class:`repro.robust.audit.InvariantAuditor`).
    """

    def __init__(self, memsys: MemorySystem, processes: Sequence[Process],
                 time_slice: int = DEFAULT_TIME_SLICE,
                 level: Optional[int] = None,
                 track_per_process: bool = False,
                 auditor=None):
        if time_slice <= 0:
            raise SchedulingError("time slice must be positive")
        if not processes:
            raise SchedulingError("at least one process is required")
        if level is not None and level <= 0:
            raise SchedulingError("multiprogramming level must be positive")
        self.memsys = memsys
        self.time_slice = time_slice
        self.level = level or len(processes)
        self._all_processes: List[Process] = list(processes)
        self._pending: Deque[Process] = deque(processes)
        self._ready: Deque[Process] = deque()
        self.context_switches = 0
        self.instructions_run = 0
        self.slices_run = 0
        self.auditor = auditor
        #: Statistics cleared once the warmup budget passes (run() drives it;
        #: persisted across checkpoint/resume so resumed runs never re-clear).
        self._warmed = False
        self._skipped_synced = 0
        #: Per-process activity attribution (slice-granular snapshots of the
        #: shared statistics); enabled by ``track_per_process``.
        self.track_per_process = track_per_process
        self.process_stats: dict = {p.name: SimStats() for p in processes}
        self._admit()

    def _admit(self) -> None:
        while self._pending and len(self._ready) < self.level:
            self._ready.append(self._pending.popleft())

    @property
    def done(self) -> bool:
        """True once every process has terminated."""
        return not self._ready and not self._pending

    def _sync_skipped(self) -> None:
        """Fold newly dropped trace records into the shared statistics."""
        total = sum(p.records_skipped for p in self._all_processes)
        delta = total - self._skipped_synced
        if delta:
            self.memsys.stats.trace_records_skipped += delta
            self._skipped_synced = total

    def run_one_slice(self) -> str:
        """Run the process at the head of the ready queue for one slice.

        Returns the reason the slice ended (``syscall``, ``slice``, or
        ``terminated``).
        """
        if self.done:
            raise SchedulingError("no runnable processes")
        memsys = self.memsys
        auditor = self.auditor
        process = self._ready[0]
        deadline = memsys.now + self.time_slice
        snapshot = memsys.stats.copy() if self.track_per_process else None
        reason = REASON_END
        while True:
            batch, pos = process.current()
            if batch is None:
                reason = "terminated"
                break
            result = memsys.run_slice(batch.pcs, batch.kinds, batch.addrs,
                                      batch.partials, batch.syscalls,
                                      pos, deadline, np_cols=batch.np_cols)
            process.advance(result.consumed)
            self.instructions_run += result.consumed
            if auditor is not None:
                auditor.observe(batch, pos, result.consumed)
            if result.reason != REASON_END:
                reason = result.reason
                break
            # Batch exhausted mid-slice: continue with the next batch.
        self._sync_skipped()
        if snapshot is not None:
            self.process_stats[process.name].add(
                memsys.stats.diff(snapshot))
        self._ready.popleft()
        if reason == "terminated":
            self._admit()
        else:
            self._ready.append(process)
        # A context switch means another process takes the CPU next; a
        # lone process rotating back to itself does not count.
        if self._ready and self._ready[0] is not process:
            self.context_switches += 1
            self.memsys.stats.context_switches += 1
            if _obs.enabled:
                _obs.tracer.emit("ctx_switch", cyc=memsys.now,
                                 out=process.name,
                                 into=self._ready[0].name, cause=reason)
        self.slices_run += 1
        if auditor is not None:
            auditor.end_slice()
        if _obs.enabled and _obs.sampler is not None:
            _obs.sampler.tick(memsys)
        return reason

    def run(self, max_instructions: Optional[int] = None,
            warmup_instructions: int = 0,
            on_slice: Optional[Callable[["Scheduler"], None]] = None
            ) -> SimStats:
        """Run until every benchmark terminates (or a budget is hit).

        Args:
            max_instructions: optional global instruction budget.
            warmup_instructions: statistics are cleared (caches kept warm)
                after this many instructions, to exclude cold-start effects
                from short reproduction runs.
            on_slice: called after every slice (checkpoint driver hook).

        Returns:
            the memory system's statistics object.
        """
        if warmup_instructions <= 0:
            self._warmed = True
        while not self.done:
            self.run_one_slice()
            if (not self._warmed
                    and self.instructions_run >= warmup_instructions):
                self.memsys.clear_stats()
                if self.track_per_process:
                    self.process_stats = {name: SimStats()
                                          for name in self.process_stats}
                self._warmed = True
            if on_slice is not None:
                on_slice(self)
            if (max_instructions is not None
                    and self.instructions_run >= max_instructions):
                break
        return self.memsys.stats

    @property
    def ready_processes(self) -> List[Process]:
        """The runnable processes, head of queue first."""
        return list(self._ready)

    # ------------------------------------------------------------- robustness

    def state_dict(self) -> dict:
        """Snapshot of queues (by pid), counters, and per-process stats."""
        return {
            "ready": [p.pid for p in self._ready],
            "pending": [p.pid for p in self._pending],
            "context_switches": self.context_switches,
            "instructions_run": self.instructions_run,
            "slices_run": self.slices_run,
            "warmed": self._warmed,
            "skipped_synced": self._skipped_synced,
            "process_stats": {name: stats.to_dict()
                              for name, stats in self.process_stats.items()},
            "processes": [p.state_dict() for p in self._all_processes],
        }

    def load_state(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot.

        The shared page table must be restored before this is called (the
        process snapshots replay their in-flight batches through it).
        """
        from repro.errors import CheckpointError

        try:
            by_pid = {p.pid: p for p in self._all_processes}
            for process_state in state["processes"]:
                pid = int(process_state["pid"])
                if pid not in by_pid:
                    raise CheckpointError(
                        f"snapshot references unknown pid {pid}")
                by_pid[pid].load_state(process_state)
            for name, queue in (("ready", None), ("pending", None)):
                for pid in state[name]:
                    if int(pid) not in by_pid:
                        raise CheckpointError(
                            f"snapshot {name} queue references unknown "
                            f"pid {pid}")
            self._ready = deque(by_pid[int(pid)] for pid in state["ready"])
            self._pending = deque(by_pid[int(pid)]
                                  for pid in state["pending"])
            self.context_switches = int(state["context_switches"])
            self.instructions_run = int(state["instructions_run"])
            self.slices_run = int(state["slices_run"])
            self._warmed = bool(state["warmed"])
            self._skipped_synced = int(state["skipped_synced"])
            process_stats = state["process_stats"]
            unknown = set(process_stats) - set(self.process_stats)
            if unknown:
                raise CheckpointError(
                    f"snapshot stats for unknown process(es): "
                    f"{', '.join(sorted(unknown))}")
            self.process_stats = {name: SimStats.from_dict(stats)
                                  for name, stats in process_stats.items()}
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"malformed scheduler snapshot: {exc}") from exc
