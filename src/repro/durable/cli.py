"""``repro-durable``: inspect run journals and storm the coordinator.

Usage::

    repro-durable inspect RUN.wal            # record-by-record dump
    repro-durable inspect RUN.wal --json     # machine-readable state
    repro-durable chaos                      # kill-anywhere storm (CI)
    repro-durable chaos --points 4 --stride 2
    repro-durable chaos --offsets 3 5 --no-stall

``inspect`` verifies the journal the same way a resuming coordinator
does — per-record checksums, contiguous sequence numbers, a torn final
line tolerated and reported — then prints the replayed state: what is
done, what is still leased, whether the run sealed.  ``chaos`` runs
:func:`repro.durable.chaos.run_durable_chaos` and exits non-zero on any
contract violation.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.errors import cli_errors


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-durable",
        description="Inspect write-ahead run journals; chaos-test "
                    "coordinator crash recovery.")
    sub = parser.add_subparsers(dest="command", required=True)

    inspect = sub.add_parser(
        "inspect", help="verify and dump one run journal")
    inspect.add_argument("journal", type=Path, help="journal file (.wal)")
    inspect.add_argument("--json", action="store_true",
                         help="emit machine-readable JSON")
    inspect.add_argument("--records", action="store_true",
                         help="also dump every record")

    chaos = sub.add_parser(
        "chaos", help="SIGKILL a live coordinator at every journal "
                      "offset; assert bit-identical recovery")
    chaos.add_argument("--points", type=int, default=3,
                       help="sweep points in the storm (default 3)")
    chaos.add_argument("--instructions", type=int, default=4000,
                       help="instructions per point (default 4000)")
    chaos.add_argument("--offsets", type=int, nargs="+", default=None,
                       metavar="K",
                       help="crash only after these journal appends "
                            "(default: every offset)")
    chaos.add_argument("--stride", type=int, default=1,
                       help="test every n-th offset (default 1 = all)")
    chaos.add_argument("--no-parallel", action="store_true",
                       help="skip the jobs=2 crash scenario")
    chaos.add_argument("--no-stall", action="store_true",
                       help="skip the stalled-worker (SIGSTOP) scenario")
    chaos.add_argument("--json", action="store_true",
                       help="emit the report as JSON")
    return parser


def _cmd_inspect(args) -> int:
    from repro.durable.journal import read_records, replay_records

    records, torn = read_records(args.journal)
    state = replay_records(records)
    summary = {
        "journal": str(args.journal),
        "run_id": state.run_id,
        "sweep_sha256": state.sweep_sha256,
        "records": len(records),
        "torn_trailing_lines": torn,
        "points": len(state.point_keys),
        "done": len(state.done),
        "claimed": len(state.claims),
        "failed": len(state.failed),
        "todo": len(state.todo()),
        "sealed": state.sealed,
        "resumes": state.resumes,
    }
    if args.json:
        if args.records:
            summary["record_list"] = records
        print(json.dumps(summary, indent=1))
        return 0
    print(f"journal  : {summary['journal']}")
    print(f"run      : {summary['run_id']}  "
          f"(sweep {summary['sweep_sha256'][:16]}…)")
    print(f"records  : {summary['records']}"
          + (f"  (+{torn} torn trailing line)" if torn else ""))
    print(f"points   : {summary['points']}  "
          f"done={summary['done']} claimed={summary['claimed']} "
          f"failed={summary['failed']} todo={summary['todo']}")
    print(f"sealed   : {summary['sealed']}   resumes: {summary['resumes']}")
    if args.records:
        for rec in records:
            extras = {k: v for k, v in rec.items()
                      if k not in ("seq", "rec", "t", "sha256", "points")}
            print(f"  [{rec['seq']:4d}] {rec['rec']:16s} {extras}")
    return 0


def _cmd_chaos(args) -> int:
    from repro.durable.chaos import DurableChaosSettings, run_durable_chaos

    settings = DurableChaosSettings(
        points=args.points,
        instructions=args.instructions,
        offsets=args.offsets,
        stride=args.stride,
        parallel_crash=not args.no_parallel,
        stalled_worker=not args.no_stall)
    report = run_durable_chaos(settings,
                               stream=None if args.json else sys.stderr)
    if args.json:
        payload = dict(report.__dict__)
        payload["passed"] = report.passed
        print(json.dumps(payload, indent=1))
    return 0 if report.passed else 1


@cli_errors
def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "inspect":
        return _cmd_inspect(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
