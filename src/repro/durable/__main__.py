"""``python -m repro.durable`` == ``repro-durable``."""

import sys

from repro.durable.cli import main

if __name__ == "__main__":
    sys.exit(main())
