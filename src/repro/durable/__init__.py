"""repro.durable: crash-safe sweep orchestration.

A write-ahead run journal (:mod:`~repro.durable.journal`) plus lease
bookkeeping (:mod:`~repro.durable.lease`) and a coordinator driver
(:mod:`~repro.durable.driver`) make every sweep — local farm,
distributed grid, or serve-backed — resumable exactly-once after a
SIGKILL of *any* process, including the coordinator itself.  The
kill-anywhere chaos harness (:mod:`~repro.durable.chaos`,
``repro-durable chaos``) proves it by murdering the coordinator at every
journal transition boundary and diffing the resumed output against an
uninterrupted run.
"""

from repro.durable.driver import DurableRun
from repro.durable.journal import (JOURNAL_MAGIC, JOURNAL_VERSION,
                                   JournalState, RunJournal, read_records,
                                   replay_records, resolve_journal,
                                   stats_sha256, sweep_sha256)
from repro.durable.lease import (DurableSettings, LeaseTable, owner_id,
                                 owner_is_dead_local)

__all__ = [
    "DurableRun", "DurableSettings", "JournalState", "JOURNAL_MAGIC",
    "JOURNAL_VERSION", "LeaseTable", "RunJournal", "owner_id",
    "owner_is_dead_local", "read_records", "replay_records",
    "resolve_journal", "stats_sha256", "sweep_sha256",
]
