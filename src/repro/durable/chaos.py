"""Kill-anywhere chaos: SIGKILL the coordinator at every journal offset.

The grid storm (:mod:`repro.grid.chaos`) kills *workers* and proves the
dispatcher survives.  This harness kills the **coordinator** — the process
that owns the journal, the cache writes, and the report — and proves the
write-ahead journal makes that survivable at *every* point in the run:

* an uninterrupted journaled run of a small sweep is executed first to
  enumerate its journal offsets (``R`` durable appends, deterministic for
  a serial pool);
* then, for each offset ``k`` in ``1..R``, a **fresh** coordinator
  subprocess runs the same sweep with
  :data:`~repro.durable.journal.CRASH_ENV` set to ``k`` — the journal
  SIGKILLs the process immediately after its ``k``-th fsynced append,
  the closest software can get to yanking the power cord at a chosen
  WAL position;
* a resume coordinator (no crash armed) then reruns the sweep against
  the surviving journal + cache and must finish and **seal** it.

The contract, asserted per offset against ground truth computed serially
before any journal exists:

1. the dead coordinator really died by SIGKILL (no cleanup softened it);
2. the resumed run's results are **bit-identical** to the serial truth —
   zero lost points, zero spurious points;
3. the final journal holds **exactly one** ``point_done`` per point (no
   double execution past a done record — the exactly-once book-keeping)
   and ends sealed;
4. the cache holds exactly one entry per distinct point (no
   double-counted results).

Two extra scenarios ride along: a **parallel crash** (``jobs=2``, one
mid-run offset) proving recovery does not depend on the serial pool, and
a **stalled worker** — a forked worker SIGSTOPs itself (via the
``freeze_once`` fault in :mod:`repro.robust.faults`), its heartbeats
stop, the pool's lease watchdog SIGKILLs it past the lease, and the
journal shows the ``point_reclaimed``/re-claim trail while the report
still comes out bit-identical.

:func:`run_durable_chaos` returns a :class:`DurableChaosReport`;
``report.passed`` is the single bit CI cares about.
"""

from __future__ import annotations

import collections
import json
import multiprocessing
import os
import signal
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.core.config import base_architecture
from repro.core.simulator import simulate
from repro.durable.journal import CRASH_ENV, read_records, replay_records
from repro.errors import JournalError
from repro.farm.points import PointSpec
from repro.robust.faults import WORKER_FAULT_ENV, worker_fault_spec


@dataclass
class DurableChaosSettings:
    """Knobs for one kill-anywhere storm; defaults are CI-sized."""

    points: int = 3
    instructions: int = 4000
    time_slice: int = 2000
    #: Crash offsets to test; ``None`` = every append of the reference
    #: run (``1..R``), ``stride`` thins that to every n-th offset.
    offsets: Optional[List[int]] = None
    stride: int = 1
    #: Resume attempts allowed per offset before declaring the journal
    #: unrecoverable (one should always suffice — the bound is a guard
    #: against a resume loop that itself keeps crashing).
    max_resumes: int = 3
    #: Also crash a ``jobs=2`` coordinator at one mid-run offset.
    parallel_crash: bool = True
    #: Also run the stalled-worker (SIGSTOP past lease) scenario.
    stalled_worker: bool = True
    #: Lease/heartbeat timing for the stalled-worker scenario: tight, so
    #: the watchdog verdict lands in CI time.
    lease_s: float = 3.0
    heartbeat_s: float = 0.5
    #: Per-child wall-clock guard.
    child_timeout_s: float = 120.0


@dataclass
class DurableChaosReport:
    """What the storm produced."""

    points: int = 0
    journal_records: int = 0
    offsets_tested: List[int] = field(default_factory=list)
    crashes: int = 0
    resumes: int = 0
    parallel_crash_tested: bool = False
    stalled_worker_tested: bool = False
    watchdog_reclaims: int = 0
    violations: List[str] = field(default_factory=list)
    wall_s: float = 0.0

    @property
    def passed(self) -> bool:
        return not self.violations

    def render(self) -> str:
        lines = [
            "== durable chaos report ==",
            f"points             : {self.points}",
            f"journal records    : {self.journal_records}",
            f"offsets tested     : {len(self.offsets_tested)} "
            f"{self.offsets_tested}",
            f"coordinator kills  : {self.crashes}",
            f"resumes            : {self.resumes}",
            f"parallel crash     : "
            f"{'yes' if self.parallel_crash_tested else 'no'}",
            f"stalled worker     : "
            f"{'yes' if self.stalled_worker_tested else 'no'}"
            + (f" (watchdog reclaims={self.watchdog_reclaims})"
               if self.stalled_worker_tested else ""),
            f"wall               : {self.wall_s:.1f}s",
            f"violations         : {len(self.violations)}",
        ]
        lines.extend(f"  VIOLATION: {v}" for v in self.violations)
        return "\n".join(lines)


def _chaos_specs(settings: DurableChaosSettings) -> List[PointSpec]:
    """``points`` distinct specs (distinct workload sizes -> distinct
    content addresses)."""
    from repro.trace.benchmarks import default_suite

    config = base_architecture()
    specs = []
    for i in range(settings.points):
        instructions = settings.instructions + 250 * i
        profiles = tuple(default_suite(instructions)[:1])
        specs.append(PointSpec(
            label=f"durable-{i}", config=config, profiles=profiles,
            time_slice=settings.time_slice))
    return specs


def _coordinator_child(payload: Dict[str, Any]) -> None:
    """Body of one coordinator subprocess (fork target).

    Runs the journaled sweep and writes the results to ``out_path`` —
    unless the armed crash kills it first.  Exceptions are written to the
    out file too, so the parent can tell "crashed as planned" (no file,
    exitcode ``-SIGKILL``) from "failed" (file with an error).
    """
    from repro.durable import DurableSettings
    from repro.farm.cache import ResultCache
    from repro.farm.points import run_points
    from repro.farm.telemetry import RunTelemetry
    from repro.robust.atomic import atomic_write_text

    if payload.get("crash_after"):
        os.environ[CRASH_ENV] = str(payload["crash_after"])
    if payload.get("worker_faults"):
        os.environ[WORKER_FAULT_ENV] = payload["worker_faults"]
    settings = DurableChaosSettings(**payload["settings"])
    specs = _chaos_specs(settings)
    telemetry = RunTelemetry(stream=None, tag="durable-chaos")
    out: Dict[str, Any] = {}
    try:
        results = run_points(
            specs, jobs=payload["jobs"],
            cache=ResultCache(payload["cache_dir"]),
            telemetry=telemetry,
            timeout=settings.child_timeout_s,
            journal=payload["journal_dir"],
            durable=DurableSettings(
                lease_s=settings.lease_s,
                heartbeat_s=settings.heartbeat_s))
        out["results"] = [stats.to_dict() for stats in results]
        out["telemetry_points"] = sum(
            1 for e in telemetry.events if e["kind"] == "point")
    except Exception as exc:  # noqa: BLE001 - shipped to the parent
        out["error"] = f"{type(exc).__name__}: {exc}"
    atomic_write_text(Path(payload["out_path"]), json.dumps(out))


def _run_coordinator(payload: Dict[str, Any],
                     timeout_s: float) -> Optional[int]:
    """Fork-run one coordinator; returns its exitcode (negative =
    killed by that signal, ``None`` = hung past the timeout and killed
    by us)."""
    ctx = multiprocessing.get_context("fork")
    proc = ctx.Process(target=_coordinator_child, args=(payload,),
                       daemon=False)
    proc.start()
    proc.join(timeout_s)
    if proc.is_alive():
        proc.kill()
        proc.join(5.0)
        return None
    return proc.exitcode


def _read_out(out_path: Path) -> Dict[str, Any]:
    try:
        return json.loads(out_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return {}


def _check_final_journal(journal_dir: Path, n_points: int,
                         where: str, violations: List[str]) -> int:
    """Exactly-once invariants on the surviving journal; returns the
    number of ``point_reclaimed`` records (the stall scenario's
    watchdog evidence)."""
    wals = sorted(journal_dir.glob("*.wal"))
    if len(wals) != 1:
        violations.append(
            f"{where}: expected exactly one journal file, found "
            f"{len(wals)}")
        return 0
    try:
        records, torn = read_records(wals[0])
        state = replay_records(records)
    except JournalError as exc:
        violations.append(f"{where}: final journal unreadable: {exc}")
        return 0
    if torn:
        # Legal mid-crash, but the *final* journal was written by a
        # coordinator that exited cleanly.
        violations.append(f"{where}: final journal ends in a torn line")
    if not state.sealed:
        violations.append(f"{where}: final journal is not sealed")
    done_counts = collections.Counter(
        r["index"] for r in records if r["rec"] == "point_done")
    if sorted(done_counts) != list(range(n_points)):
        violations.append(
            f"{where}: point_done indices {sorted(done_counts)} != "
            f"expected 0..{n_points - 1}")
    doubled = {i: c for i, c in done_counts.items() if c != 1}
    if doubled:
        violations.append(
            f"{where}: points done more than once (double-counted): "
            f"{doubled}")
    return sum(1 for r in records if r["rec"] == "point_reclaimed")


def _crash_and_resume(settings: DurableChaosSettings, truths: List[dict],
                      offset: int, jobs: int, where: str, tmp: Path,
                      report: DurableChaosReport) -> None:
    """One full crash-at-offset-``k`` cycle: kill, resume, verify."""
    workdir = tmp / where
    cache_dir = workdir / "cache"
    journal_dir = workdir / "journal"
    journal_dir.mkdir(parents=True)
    out_path = workdir / "out.json"
    payload = {
        "settings": settings.__dict__,
        "jobs": jobs,
        "cache_dir": str(cache_dir),
        "journal_dir": str(journal_dir),
        "out_path": str(out_path),
        "crash_after": offset,
    }

    code = _run_coordinator(payload, settings.child_timeout_s)
    if code != -signal.SIGKILL:
        report.violations.append(
            f"{where}: armed crash at append {offset} did not SIGKILL "
            f"the coordinator (exitcode={code})")
        return
    report.crashes += 1

    # Resume (no crash armed) until the run seals.
    resumed = dict(payload, crash_after=None)
    final: Dict[str, Any] = {}
    for _ in range(settings.max_resumes):
        out_path.unlink(missing_ok=True)
        code = _run_coordinator(resumed, settings.child_timeout_s)
        report.resumes += 1
        final = _read_out(out_path)
        if code == 0 and "results" in final:
            break
    else:
        report.violations.append(
            f"{where}: run never completed within "
            f"{settings.max_resumes} resumes "
            f"(last exitcode={code}, error={final.get('error')!r})")
        return

    if final["results"] != truths:
        report.violations.append(
            f"{where}: resumed results diverge from the serial ground "
            "truth")
    if final.get("telemetry_points") != settings.points:
        report.violations.append(
            f"{where}: resumed run reported "
            f"{final.get('telemetry_points')} telemetry points, "
            f"expected {settings.points} (lost or double-counted)")
    _check_final_journal(journal_dir, settings.points, where,
                         report.violations)
    cache_entries = len(list(cache_dir.glob("*.json")))
    if cache_entries != settings.points:
        report.violations.append(
            f"{where}: cache holds {cache_entries} entries, expected "
            f"{settings.points}")


def run_durable_chaos(settings: Optional[DurableChaosSettings] = None,
                      stream=None) -> DurableChaosReport:
    """Run the full kill-anywhere storm; see the module doc."""
    settings = settings or DurableChaosSettings()
    report = DurableChaosReport(points=settings.points)
    started = time.monotonic()

    specs = _chaos_specs(settings)
    # Serial ground truth before any journal exists: the bare simulator,
    # nothing shared with the system under test.
    truths = [simulate(spec.config, list(spec.profiles),
                       time_slice=spec.time_slice).to_dict()
              for spec in specs]

    with tempfile.TemporaryDirectory(prefix="repro-durable-chaos-") as td:
        tmp = Path(td)

        # Reference run, uninterrupted: counts the journal's appends so
        # the crash scan covers every offset that can actually occur.
        ref = tmp / "reference"
        (ref / "journal").mkdir(parents=True)
        ref_payload = {
            "settings": settings.__dict__,
            "jobs": 1,
            "cache_dir": str(ref / "cache"),
            "journal_dir": str(ref / "journal"),
            "out_path": str(ref / "out.json"),
            "crash_after": None,
        }
        code = _run_coordinator(ref_payload, settings.child_timeout_s)
        ref_out = _read_out(ref / "out.json")
        if code != 0 or "results" not in ref_out:
            report.violations.append(
                f"reference run failed (exitcode={code}, "
                f"error={ref_out.get('error')!r}) — nothing to crash")
            report.wall_s = time.monotonic() - started
            if stream is not None:
                print(report.render(), file=stream, flush=True)
            return report
        if ref_out["results"] != truths:
            report.violations.append(
                "reference journaled run diverges from the serial ground "
                "truth — the durable path is wrong before any fault")
        wal = next(iter(sorted((ref / "journal").glob("*.wal"))))
        records, _ = read_records(wal)
        report.journal_records = len(records)

        offsets = settings.offsets
        if offsets is None:
            offsets = list(range(1, len(records) + 1, settings.stride))
        report.offsets_tested = offsets

        for k in offsets:
            _crash_and_resume(settings, truths, k, jobs=1,
                              where=f"offset-{k}", tmp=tmp, report=report)

        if settings.parallel_crash:
            # One mid-run offset with a 2-worker pool: recovery must not
            # depend on the serial pool's deterministic append order.
            k = max(2, len(records) // 2)
            _crash_and_resume(settings, truths, k, jobs=2,
                              where="parallel-crash", tmp=tmp,
                              report=report)
            report.parallel_crash_tested = True

        if settings.stalled_worker:
            workdir = tmp / "stalled-worker"
            journal_dir = workdir / "journal"
            journal_dir.mkdir(parents=True)
            out_path = workdir / "out.json"
            payload = {
                "settings": settings.__dict__,
                "jobs": 2,
                "cache_dir": str(workdir / "cache"),
                "journal_dir": str(journal_dir),
                "out_path": str(out_path),
                "crash_after": None,
                "worker_faults": worker_fault_spec(
                    freeze_once=str(workdir / "freeze.marker")),
            }
            code = _run_coordinator(payload, settings.child_timeout_s)
            out = _read_out(out_path)
            report.stalled_worker_tested = True
            if code != 0 or "results" not in out:
                report.violations.append(
                    f"stalled-worker: run failed (exitcode={code}, "
                    f"error={out.get('error')!r})")
            else:
                if out["results"] != truths:
                    report.violations.append(
                        "stalled-worker: results diverge from the serial "
                        "ground truth")
                if not (workdir / "freeze.marker").exists():
                    report.violations.append(
                        "stalled-worker: the freeze fault never fired")
                reclaims = _check_final_journal(
                    journal_dir, settings.points, "stalled-worker",
                    report.violations)
                report.watchdog_reclaims = reclaims
                if reclaims < 1:
                    report.violations.append(
                        "stalled-worker: no point_reclaimed record — the "
                        "lease watchdog never declared the frozen worker "
                        "stuck")

    report.wall_s = time.monotonic() - started
    if stream is not None:
        print(report.render(), file=stream, flush=True)
    return report
