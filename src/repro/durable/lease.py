"""Leases: the liveness half of the durability story.

The journal (:mod:`repro.durable.journal`) records *who owns what until
when*; this module holds the in-memory side — validated timing knobs
(:class:`DurableSettings`), the coordinator's live lease table
(:class:`LeaseTable`), and the distinction the watchdog trades on:

    **slow** is a worker that still heartbeats — leave it alone (the
    grid's hedging already races stragglers); **stuck** is a worker whose
    lease expired with *no* heartbeat — it will never finish, so kill it,
    journal the reclaim, and re-dispatch under the retry budget.

Every parameter is validated at construction time (PR 1's
``__post_init__`` discipline): a zero lease or a retry budget below one
is a configuration bug that must fail loudly *before* a run starts, not
misbehave hours into one.
"""

from __future__ import annotations

import os
import socket
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ConfigurationError


def owner_id(pid: Optional[int] = None) -> str:
    """This process's lease-owner identity: ``host:pid``.

    The host part makes dead-owner detection honest in a grid: a
    coordinator can only probe liveness (``os.kill(pid, 0)``) for owners
    on its *own* host — a remote owner is declared dead by lease expiry
    alone, never by pid probing.
    """
    return f"{socket.gethostname()}:{pid if pid is not None else os.getpid()}"


def owner_is_dead_local(owner: str) -> bool:
    """True only when ``owner`` names a pid on *this* host that is
    provably gone — the fast path that lets recovery reclaim a crashed
    coordinator's own leases without waiting out the lease clock."""
    host, _, pid_s = owner.rpartition(":")
    if host != socket.gethostname():
        return False
    try:
        pid = int(pid_s)
    except ValueError:
        return False
    if pid == os.getpid():
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return True
    except PermissionError:
        return False   # exists, owned by someone else
    return False


@dataclass(frozen=True)
class DurableSettings:
    """Timing and budget knobs for a durable run.

    Attributes:
        lease_s: how long a ``point_claimed`` lease lasts without a
            renewal before the point is presumed orphaned.
        heartbeat_s: how often a live worker proves liveness; must leave
            several beats of slack inside one lease, so it is capped at
            half the lease.
        renew_every_s: how often the coordinator *journals* a renewal
            (``lease_renewed``) for a still-beating point — the on-disk
            trail is rate-limited, the in-memory beat stream is not.
            Defaults to half the lease.
        max_point_retries: total executions one point may consume across
            crashes, lease expiries, *and resumes* (attempts are counted
            from the journal, so a deterministically-crashing point
            cannot loop forever across restarts).  Must be >= 1.
        watchdog_poll_s: how often the stuck-point monitor wakes.
    """

    lease_s: float = 30.0
    heartbeat_s: float = 2.0
    renew_every_s: Optional[float] = None
    max_point_retries: int = 3
    watchdog_poll_s: float = 0.25

    def __post_init__(self):
        if not self.lease_s > 0:
            raise ConfigurationError(
                f"lease_s must be positive, got {self.lease_s!r}: a "
                "zero/negative lease declares every point stuck instantly")
        if not self.heartbeat_s > 0:
            raise ConfigurationError(
                f"heartbeat_s must be positive, got {self.heartbeat_s!r}")
        if self.heartbeat_s > self.lease_s / 2:
            raise ConfigurationError(
                f"heartbeat_s ({self.heartbeat_s:g}) must be at most half "
                f"of lease_s ({self.lease_s:g}); a lease needs several "
                "beats of slack or healthy workers get reaped")
        if self.max_point_retries < 1:
            raise ConfigurationError(
                f"max_point_retries must be >= 1, got "
                f"{self.max_point_retries!r}: every point needs at least "
                "one execution attempt")
        if not self.watchdog_poll_s > 0:
            raise ConfigurationError(
                f"watchdog_poll_s must be positive, got "
                f"{self.watchdog_poll_s!r}")

    @property
    def journal_renew_s(self) -> float:
        return (self.renew_every_s if self.renew_every_s is not None
                else self.lease_s / 2)


class LeaseTable:
    """The coordinator's live view of outstanding leases.

    Monotonic-clock based (journal records carry wall-clock deadlines for
    cross-process recovery; *within* one coordinator, monotonic time is
    the only honest clock).  Not thread-safe by itself — callers hold
    their own lock (the pool loop and the grid supervisor are each
    single-threaded over their table).
    """

    def __init__(self, settings: DurableSettings):
        self.settings = settings
        #: index -> monotonic time of the most recent proof of life.
        self._beat: Dict[int, float] = {}
        #: index -> monotonic time the last lease_renewed was journaled.
        self._renewed: Dict[int, float] = {}

    def start(self, index: int) -> None:
        now = time.monotonic()
        self._beat[index] = now
        self._renewed[index] = now

    def beat(self, index: int) -> None:
        if index in self._beat:
            self._beat[index] = time.monotonic()

    def drop(self, index: int) -> None:
        self._beat.pop(index, None)
        self._renewed.pop(index, None)

    def expired(self, index: int) -> bool:
        """Lease ran out with no heartbeat — *stuck*, not slow."""
        last = self._beat.get(index)
        return (last is not None
                and time.monotonic() - last > self.settings.lease_s)

    def expired_now(self) -> List[int]:
        return [i for i in list(self._beat) if self.expired(i)]

    def due_renewal(self, index: int) -> bool:
        """A still-beating point whose on-disk lease should be extended."""
        last = self._renewed.get(index)
        return (last is not None and not self.expired(index)
                and time.monotonic() - last >= self.settings.journal_renew_s)

    def renewed(self, index: int) -> None:
        if index in self._renewed:
            self._renewed[index] = time.monotonic()
