"""DurableRun: the coordinator-side driver over one run journal.

This is the piece the farm's :func:`~repro.farm.points.run_points` and the
grid's :class:`~repro.grid.GridDispatcher` share.  It owns the WAL
ordering rules so no caller can get them wrong:

* **recovery** (:meth:`begin`) replays the journal, re-validates every
  ``point_done`` against the content-addressed cache (a done record whose
  cache entry is missing or corrupt is demoted back to *todo* — the
  journal asserts control flow, the cache asserts data, and the cache is
  re-checked every resume), reclaims leases whose owner is provably dead
  on this host or whose wall-clock deadline has passed, and hands back
  the surviving work in **input order** — which is what makes a resumed
  report bit-identical to an uninterrupted one;
* **claim** journals the lease *before* the work starts (crash after
  claim → orphan, reclaimed on resume; crash before → never started,
  nothing to recover);
* **done** journals *after* the caller has stored the result in the
  cache (crash between store and done → the done record is missing but
  the cache re-answers instantly on resume; the inverse order would
  record a result that does not exist);
* **budget**: attempts are counted from the journal, across resumes — a
  point that crashes deterministically burns its ``max_point_retries``
  budget over any number of restarts and then fails the run with a clear
  per-point error instead of looping forever.

Exactly-once, precisely: each point's *effect* (one cache entry, one
telemetry count, one slot in the report) happens once even though its
*execution* may happen several times under crashes — the journal
guarantees at most one ``point_done`` per index survives, and the
deterministic simulator guarantees every execution produces the same
bits.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.errors import FarmError, JournalError
from repro.durable.journal import (PathLike, RunJournal, resolve_journal,
                                   stats_sha256)
from repro.durable.lease import (DurableSettings, LeaseTable, owner_id,
                                 owner_is_dead_local)


class DurableRun:
    """One durable execution of one sweep, backed by a journal + cache.

    Args:
        journal: a :class:`RunJournal`, a journal file path (``.wal`` /
            ``.jsonl`` / ``.journal``), or a journal *directory* (the
            sweep gets a content-addressed file inside it).
        cache: the content-addressed result cache — **required**: the
            journal stores only digests; without the cache a ``done``
            record has nothing durable to point at.
        settings: validated timing/budget knobs.
        registry: optional :class:`repro.obs.metrics.Registry` the
            recovery counters land in (``durable_replayed_points_total``,
            ``durable_reclaimed_leases_total``, ``durable_retries_total``,
            ``durable_watchdog_expired_total``, ``durable_resumes_total``).
    """

    def __init__(self, journal: Union[RunJournal, PathLike], cache,
                 settings: Optional[DurableSettings] = None,
                 registry=None):
        if cache is None:
            raise JournalError(
                "a durable run requires a result cache: the journal "
                "records digests of results, the cache holds the results "
                "themselves (pass cache=... or drop journal=...)")
        self.cache = cache
        self.settings = settings if settings is not None else DurableSettings()
        self.owner = owner_id()
        self._journal_arg = journal
        self.journal: Optional[RunJournal] = None
        self.state = None
        self.leases = LeaseTable(self.settings)
        self.specs: Sequence[Any] = ()
        self._keys: List[str] = []
        if registry is None:
            from repro.obs.metrics import Registry

            registry = Registry()
        self.registry = registry
        self._m_replayed = registry.counter(
            "durable_replayed_points_total",
            "points satisfied from the journal+cache on resume")
        self._m_reclaimed = registry.counter(
            "durable_reclaimed_leases_total",
            "orphaned/expired leases reclaimed, by reason",
            labels=("reason",))
        self._m_retries = registry.counter(
            "durable_retries_total", "journaled point re-dispatches")
        self._m_expired = registry.counter(
            "durable_watchdog_expired_total",
            "points the watchdog declared stuck (lease expired, no beat)")
        self._m_resumes = registry.counter(
            "durable_resumes_total", "journal-backed run resumptions")

    # ------------------------------------------------------------------ begin

    def begin(self, specs: Sequence[Any]) -> Dict[int, Any]:
        """Open/resume the journal for ``specs``; returns recovered results.

        The return value maps point index -> :class:`SimStats` for every
        point whose ``point_done`` record survived validation against the
        cache.  Everything else — fresh points, orphans, demoted done
        records — is plain *todo* for the caller, in input order.
        """
        self.specs = specs
        self._keys = [spec.key() for spec in specs]
        labels = [spec.label for spec in specs]
        self.journal = resolve_journal(self._journal_arg, self._keys)
        scenarios = sorted({spec.scenario for spec in specs
                            if getattr(spec, "scenario", None)})
        meta = {"scenario_sha256": scenarios[0]} if len(scenarios) == 1 \
            else ({"scenario_sha256": scenarios} if scenarios else None)
        self.state, resumed = self.journal.open_run(self._keys, labels,
                                                    meta=meta)
        recovered: Dict[int, Any] = {}
        if not resumed:
            return recovered
        self._m_resumes.inc()
        # Done records are only as good as the cache entries behind them.
        demoted = 0
        for index, digest in sorted(self.state.done.items()):
            stats = self.cache.get(self._keys[index])
            if stats is not None and stats_sha256(stats.to_dict()) == digest:
                recovered[index] = stats
                self._m_replayed.inc()
            else:
                # The cache lost or corrupted the result after it was
                # journaled: demote to todo (in memory only — a fresh
                # point_done will supersede the stale one on completion).
                del self.state.done[index]
                demoted += 1
        # Leases: a dead local owner is reclaimed immediately; otherwise
        # the wall-clock deadline decides (a live foreign coordinator may
        # legitimately still hold the lease — resuming under it would
        # double-run the point).
        reclaimed = 0
        now = time.time()
        for index, claim in sorted(self.state.claims.items()):
            if owner_is_dead_local(claim.owner) or claim.owner == self.owner:
                reason = "owner_dead"
            elif claim.expired(now):
                reason = "lease_expired"
            else:
                raise JournalError(
                    f"point {index} ({self.state.labels[index]!r}) is "
                    f"leased to {claim.owner} until "
                    f"{claim.deadline_unix - now:.1f}s from now; refusing "
                    "to resume under a live lease (wait it out, or stop "
                    "the other coordinator)")
            self.journal.append("point_reclaimed", index=index,
                                owner=claim.owner, reason=reason)
            self._m_reclaimed.labels(reason).inc()
            reclaimed += 1
        self.state.claims.clear()
        self.journal.append("run_resumed", owner=self.owner,
                            replayed=len(recovered), reclaimed=reclaimed,
                            demoted=demoted)
        return recovered

    # ------------------------------------------------------------ transitions

    def attempts(self, index: int) -> int:
        return self.state.attempts.get(index, 0)

    def budget_left(self, index: int) -> bool:
        return self.attempts(index) < self.settings.max_point_retries

    def claim(self, index: int) -> None:
        """Journal a lease for ``index`` and start its liveness clock.

        Raises :class:`~repro.errors.FarmError` when the point's
        journal-counted attempt budget is already spent — the
        deterministic-crash stopcock.
        """
        if not self.budget_left(index):
            label = self.state.labels[index]
            error = (f"point {label!r} exhausted its retry budget: "
                     f"{self.attempts(index)} attempts across resumes "
                     f"(max_point_retries={self.settings.max_point_retries})")
            self.fail(index, error)
            raise FarmError(error, label=label)
        attempt = self.attempts(index) + 1
        if attempt > 1:
            self._m_retries.inc()
        record = self.journal.append(
            "point_claimed", index=index, key=self._keys[index],
            owner=self.owner, lease_s=self.settings.lease_s,
            deadline_unix=round(time.time() + self.settings.lease_s, 6),
            attempt=attempt)
        self.state.apply(record)
        self.leases.start(index)

    def heartbeat(self, index: int) -> None:
        """A worker proved liveness for ``index``; extend the on-disk
        lease at most every ``journal_renew_s`` (the beat stream itself
        stays off-disk)."""
        self.leases.beat(index)
        if self.leases.due_renewal(index):
            record = self.journal.append(
                "lease_renewed", index=index, owner=self.owner,
                deadline_unix=round(time.time() + self.settings.lease_s, 6))
            self.state.apply(record)
            self.leases.renewed(index)

    def expired(self) -> List[int]:
        """Indices whose lease ran out with no heartbeat — *stuck*."""
        return self.leases.expired_now()

    def reclaim(self, index: int, reason: str = "lease_expired") -> None:
        """The watchdog declared ``index`` stuck; journal the reclaim.
        The caller kills/abandons the worker and re-claims to retry."""
        record = self.journal.append("point_reclaimed", index=index,
                                     owner=self.owner, reason=reason)
        self.state.apply(record)
        self.leases.drop(index)
        self._m_reclaimed.labels(reason).inc()
        if reason == "lease_expired":
            self._m_expired.inc()

    def done(self, index: int, stats) -> None:
        """Journal completion of ``index``.

        WAL ordering: the caller **must** have stored ``stats`` in the
        cache first — this record asserts the result is durable."""
        record = self.journal.append(
            "point_done", index=index, key=self._keys[index],
            cache_key=self._keys[index],
            stats_sha256=stats_sha256(stats.to_dict()))
        self.state.apply(record)
        self.leases.drop(index)

    def fail(self, index: int, error: str) -> None:
        record = self.journal.append("point_failed", index=index,
                                     error=str(error),
                                     attempt=self.attempts(index))
        self.state.apply(record)
        self.leases.drop(index)

    def seal(self) -> None:
        """Every point is done: journal ``run_sealed`` and close."""
        missing = self.state.todo()
        if missing:
            raise JournalError(
                f"cannot seal: {len(missing)} points still open "
                f"(first: {self.state.labels[missing[0]]!r})")
        if not self.state.sealed:
            record = self.journal.append("run_sealed",
                                         done=len(self.state.done))
            self.state.apply(record)

    def close(self) -> None:
        if self.journal is not None:
            self.journal.close()
