"""The write-ahead run journal: every sweep state transition, durably.

A :class:`RunJournal` is an append-only JSONL file living next to the
report it protects.  One record is appended — and **fsynced** — per state
transition of the sweep, so after a crash of *any* process (including the
coordinator) the journal replays to the exact control state the run died
in, and the content-addressed result cache supplies the data.  Together
they make a sweep resumable exactly-once: a point past ``point_done``
is never executed again, and a resumed run's output is bit-identical to
an uninterrupted one (results come back in input order either way).

Record schema (one JSON object per line; see DESIGN.md §15)::

    run_open       seq=0: run_id, the full point list (label + content
                   address per point, which hashes config/engine/energy),
                   sweep_sha256 over the ordered key list, meta
    point_claimed  index, key, owner ("host:pid"), lease_s,
                   deadline_unix, attempt
    lease_renewed  index, owner, deadline_unix   (rate-limited; the
                   heartbeat stream itself stays off-disk)
    point_reclaimed index, prior owner, reason
                   (lease_expired | owner_dead | recovery)
    point_done     index, key, cache_key, stats_sha256
    point_failed   index, error, attempt
    run_resumed    owner, replayed, reclaimed    (audit trail only)
    run_sealed     done count — the sweep completed

Every record carries ``seq`` (contiguous from 0) and ``sha256`` over its
own canonical form.  Replay (:func:`replay_records` →
:class:`JournalState`) verifies both; a torn **final** line — the crash
landed mid-append — is silently dropped, because the append protocol
guarantees the transition it described never took effect, while a bad
record anywhere *else* raises :class:`~repro.errors.JournalError` (that
is real corruption, not a crash artifact).

Crash injection: when ``$REPRO_DURABLE_CRASH_AFTER_APPENDS`` is set, the
process SIGKILLs itself immediately after durably writing that many
records — the hook the kill-anywhere chaos harness
(:mod:`repro.durable.chaos`) uses to park a crash on every journal
transition boundary.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import JournalError
from repro.obs import runtime as _obs

PathLike = Union[str, os.PathLike]

JOURNAL_MAGIC = "repro-journal"
#: Bump when the record schema changes incompatibly; an old journal then
#: refuses to resume instead of resuming wrongly.
JOURNAL_VERSION = 1

#: Environment variable: SIGKILL this process after N durable appends.
CRASH_ENV = "REPRO_DURABLE_CRASH_AFTER_APPENDS"

#: Every record type replay understands.
RECORD_TYPES = frozenset({
    "run_open", "point_claimed", "lease_renewed", "point_reclaimed",
    "point_done", "point_failed", "run_resumed", "run_sealed",
})

#: File suffixes naming a journal *file*; any other path handed to
#: :func:`resolve_journal` is treated as a journal *directory* holding
#: one content-addressed file per sweep.
JOURNAL_SUFFIXES = (".wal", ".jsonl", ".journal")


def _canonical(record: Dict[str, Any]) -> bytes:
    return json.dumps(record, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def _record_digest(record: Dict[str, Any]) -> str:
    body = {k: v for k, v in record.items() if k != "sha256"}
    return hashlib.sha256(_canonical(body)).hexdigest()


def stats_sha256(stats_dict: Dict[str, Any]) -> str:
    """Integrity digest of a stats snapshot — same canonical form the
    cache and the serve protocol hash, so a ``point_done`` record can be
    cross-checked against the cache entry it points at."""
    return hashlib.sha256(_canonical(stats_dict)).hexdigest()


def sweep_sha256(keys: Sequence[str]) -> str:
    """Identity of a sweep: the SHA-256 of its ordered point-key list.

    Two sweeps with the same points in the same order share one journal
    identity, which is what lets a journal *directory* resume the right
    file automatically (:func:`resolve_journal`)."""
    return hashlib.sha256(_canonical({"keys": list(keys)})).hexdigest()


class _Claim:
    """Replay-side view of one outstanding lease."""

    __slots__ = ("owner", "deadline_unix", "attempt", "claimed_unix")

    def __init__(self, owner: str, deadline_unix: float, attempt: int,
                 claimed_unix: Optional[float] = None):
        self.owner = owner
        self.deadline_unix = deadline_unix
        self.attempt = attempt
        self.claimed_unix = claimed_unix

    def expired(self, now: Optional[float] = None) -> bool:
        return (now if now is not None else time.time()) \
            >= self.deadline_unix


class JournalState:
    """The control state a journal replays to.

    Replay is a pure, deterministic function of the record prefix —
    replaying any prefix, crashing, and replaying it again converges to
    the same claimed/done sets (property-tested in
    ``tests/test_durable_journal.py``) — and ``done`` is monotone: once a
    point is done, no later record can make it runnable again.
    """

    def __init__(self) -> None:
        self.run_id: Optional[str] = None
        self.sweep_sha256: Optional[str] = None
        self.point_keys: List[str] = []
        self.labels: List[str] = []
        self.meta: Dict[str, Any] = {}
        #: index -> stats_sha256 of the durably cached result.
        self.done: Dict[int, str] = {}
        #: index -> outstanding lease.
        self.claims: Dict[int, _Claim] = {}
        #: index -> how many times the point has ever been claimed.
        self.attempts: Dict[int, int] = {}
        #: index -> terminal error message (retry budget exhausted).
        self.failed: Dict[int, str] = {}
        self.sealed = False
        self.resumes = 0

    @property
    def n_points(self) -> int:
        return len(self.point_keys)

    def todo(self) -> List[int]:
        """Indices with no durable result, in input order."""
        return [i for i in range(self.n_points) if i not in self.done]

    def progress(self, now: Optional[float] = None) -> Dict[str, Any]:
        """The read-side view of the run for dashboards and inspectors:
        todo/claimed/done/failed counts, per-lease ages and expiry, and
        the retry total — derived purely from replayed state, so any
        process may watch a live coordinator's journal without touching
        its lock (reads never append)."""
        now = time.time() if now is None else now
        leases = []
        for index in sorted(self.claims):
            claim = self.claims[index]
            leases.append({
                "index": index,
                "label": (self.labels[index]
                          if index < len(self.labels) else ""),
                "owner": claim.owner,
                "attempt": claim.attempt,
                "age_s": (round(now - claim.claimed_unix, 3)
                          if claim.claimed_unix is not None else None),
                "expires_in_s": round(claim.deadline_unix - now, 3),
                "expired": claim.expired(now),
            })
        claimed = set(self.claims)
        failed = set(self.failed) - set(self.done)
        todo = [i for i in self.todo()
                if i not in claimed and i not in failed]
        return {
            "run_id": self.run_id,
            "sweep_sha256": self.sweep_sha256,
            "points": self.n_points,
            "done": len(self.done),
            "claimed": len(claimed),
            "failed": len(failed),
            "todo": len(todo),
            "sealed": self.sealed,
            "resumes": self.resumes,
            "retries": sum(max(0, a - 1) for a in self.attempts.values()),
            "leases": leases,
        }

    def _index(self, record: Dict[str, Any]) -> int:
        index = record.get("index")
        if not isinstance(index, int) or not 0 <= index < self.n_points:
            raise JournalError(
                f"record {record.get('seq')} names point index {index!r} "
                f"outside this run's {self.n_points} points")
        return index

    def apply(self, record: Dict[str, Any]) -> None:
        """Fold one verified record into the state."""
        rec = record.get("rec")
        if rec == "run_open":
            if self.run_id is not None:
                raise JournalError("duplicate run_open record")
            self.run_id = record["run_id"]
            self.sweep_sha256 = record["sweep_sha256"]
            self.point_keys = [p["key"] for p in record["points"]]
            self.labels = [p["label"] for p in record["points"]]
            self.meta = dict(record.get("meta", {}))
            return
        if self.run_id is None:
            raise JournalError(
                f"{rec!r} record before run_open — not a run journal")
        if rec == "point_claimed":
            index = self._index(record)
            self.attempts[index] = self.attempts.get(index, 0) + 1
            if index not in self.done:    # a late claim cannot undo done
                self.claims[index] = _Claim(record["owner"],
                                            float(record["deadline_unix"]),
                                            self.attempts[index],
                                            record.get("t"))
                self.failed.pop(index, None)
            self.sealed = False
        elif rec == "lease_renewed":
            index = self._index(record)
            claim = self.claims.get(index)
            if claim is not None and claim.owner == record["owner"]:
                claim.deadline_unix = float(record["deadline_unix"])
        elif rec == "point_reclaimed":
            self.claims.pop(self._index(record), None)
        elif rec == "point_done":
            index = self._index(record)
            self.done[index] = record["stats_sha256"]
            self.claims.pop(index, None)
            self.failed.pop(index, None)
        elif rec == "point_failed":
            index = self._index(record)
            if index not in self.done:
                self.failed[index] = str(record.get("error", ""))
            self.claims.pop(index, None)
        elif rec == "run_resumed":
            self.resumes += 1
        elif rec == "run_sealed":
            self.sealed = True
        else:
            raise JournalError(f"unknown journal record type {rec!r}")


def verify_record(line: str) -> Dict[str, Any]:
    """Parse and checksum-verify one journal line; raises ``ValueError``
    on any defect (the caller decides torn-tail vs corruption)."""
    record = json.loads(line)
    if not isinstance(record, dict):
        raise ValueError("record is not an object")
    if record.get("sha256") != _record_digest(record):
        raise ValueError("record checksum mismatch")
    if record.get("rec") not in RECORD_TYPES:
        raise ValueError(f"unknown record type {record.get('rec')!r}")
    return record


def read_records(path: PathLike) -> Tuple[List[Dict[str, Any]], int]:
    """Read, verify, and sequence-check a journal file.

    Returns ``(records, torn)`` where ``torn`` is 1 if a damaged final
    line was dropped (the mid-append crash signature).  A damaged record
    anywhere else raises :class:`JournalError`.
    """
    path = Path(path)
    try:
        blob = path.read_bytes()
    except OSError:
        return [], 0
    lines = blob.decode("utf-8", errors="surrogateescape").split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    records: List[Dict[str, Any]] = []
    torn = 0
    for lineno, line in enumerate(lines):
        try:
            record = verify_record(line)
        except (ValueError, json.JSONDecodeError) as exc:
            if lineno == len(lines) - 1:
                torn = 1   # mid-append crash: the transition never happened
                break
            raise JournalError(
                f"journal {path} record {lineno} is corrupt ({exc}); "
                "refusing to resume from a damaged journal") from exc
        if record.get("seq") != lineno:
            raise JournalError(
                f"journal {path} has a sequence gap at record {lineno} "
                f"(seq {record.get('seq')!r})")
        records.append(record)
    if records:
        head = records[0]
        if (head.get("rec") != "run_open"
                or head.get("magic") != JOURNAL_MAGIC):
            raise JournalError(f"journal {path} does not start with a "
                               "run_open record")
        if head.get("version") != JOURNAL_VERSION:
            raise JournalError(
                f"journal {path} has schema version "
                f"{head.get('version')!r}, this build speaks "
                f"{JOURNAL_VERSION}; re-run without the old journal")
    return records, torn


def replay_records(records: Sequence[Dict[str, Any]]) -> JournalState:
    """Fold verified records into a :class:`JournalState`."""
    state = JournalState()
    for record in records:
        state.apply(record)
    return state


class RunJournal:
    """An append-only, fsynced, checksummed run journal.

    Thread-safe: the farm's watchdog, the grid's worker threads, and the
    coordinator's own loop may all append concurrently.
    """

    def __init__(self, path: PathLike):
        self.path = Path(path)
        self._lock = threading.Lock()
        self._fh = None
        self._seq = 0        # next sequence number
        self._appends = 0    # durable appends by THIS process
        crash = os.environ.get(CRASH_ENV)
        self._crash_after = int(crash) if crash else None

    # ------------------------------------------------------------ open/close

    def open_run(self, point_keys: Sequence[str], labels: Sequence[str],
                 meta: Optional[Dict[str, Any]] = None
                 ) -> Tuple[JournalState, bool]:
        """Open (or resume) the run this journal describes.

        A fresh/empty journal gets its ``run_open`` record; an existing
        one is replayed and validated against the given sweep — resuming
        with different points is a caller bug and raises
        :class:`JournalError` rather than silently mixing sweeps.

        Returns ``(state, resumed)``.
        """
        self._open_fh()   # lock first: read a consistent, quiescent file
        records, _ = read_records(self.path)
        state = replay_records(records)
        sweep = sweep_sha256(point_keys)
        resumed = bool(records)
        if resumed:
            if state.sweep_sha256 != sweep:
                raise JournalError(
                    f"journal {self.path} describes a different sweep "
                    f"(sweep {state.sweep_sha256[:12]}…, resuming "
                    f"{sweep[:12]}…); refusing to mix runs")
            self._seq = records[-1]["seq"] + 1
        else:
            state = JournalState()
            self._seq = 0
            record = self._append("run_open",
                                  magic=JOURNAL_MAGIC,
                                  version=JOURNAL_VERSION,
                                  run_id=os.urandom(8).hex(),
                                  sweep_sha256=sweep,
                                  points=[{"label": label, "key": key}
                                          for label, key
                                          in zip(labels, point_keys)],
                                  meta=dict(meta or {}))
            state.apply(record)
        return state, resumed

    def _open_fh(self) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
            # One coordinator per journal: interleaved appends from two
            # processes would shred the sequence chain.  The kernel drops
            # the lock when the holder dies — even by SIGKILL — so a
            # crashed coordinator never wedges its successor.
            try:
                import fcntl

                fcntl.flock(self._fh.fileno(),
                            fcntl.LOCK_EX | fcntl.LOCK_NB)
            except ImportError:      # non-POSIX: no advisory locking
                pass
            except OSError:
                self._fh.close()
                self._fh = None
                raise JournalError(
                    f"journal {self.path} is locked by another live "
                    "coordinator; refusing to double-run the sweep")

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # --------------------------------------------------------------- appends

    def append(self, rec: str, **fields: Any) -> Dict[str, Any]:
        """Durably append one record; returns it (with seq + checksum)."""
        return self._append(rec, **fields)

    def _append(self, rec: str, **fields: Any) -> Dict[str, Any]:
        if rec not in RECORD_TYPES:
            raise JournalError(f"unknown journal record type {rec!r}")
        with self._lock:
            if self._fh is None:
                raise JournalError(
                    f"journal {self.path} is not open (call open_run)")
            record: Dict[str, Any] = {
                "seq": self._seq, "rec": rec,
                "t": round(time.time(), 6), **fields,
            }
            record["sha256"] = _record_digest(record)
            self._fh.write(json.dumps(record, sort_keys=True,
                                      separators=(",", ":")) + "\n")
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._seq += 1
            self._appends += 1
            if _obs.enabled:
                _obs.tracer.emit("journal", rec=rec, seq=record["seq"],
                                 index=fields.get("index"))
            if (self._crash_after is not None
                    and self._appends >= self._crash_after):
                # The chaos hook: die the hard way, *after* the record is
                # durable — exactly the boundary recovery must survive.
                os.kill(os.getpid(), signal.SIGKILL)
        return record


def inspect_progress(path: PathLike,
                     now: Optional[float] = None) -> Dict[str, Any]:
    """Read-only inspection of one journal file: replayed
    :meth:`JournalState.progress` plus file-level facts.  Never appends,
    never locks — safe against a live coordinator."""
    path = Path(path)
    records, torn = read_records(path)
    state = replay_records(records)
    progress = state.progress(now)
    progress.update({
        "journal": str(path),
        "records": len(records),
        "torn_trailing_lines": torn,
    })
    return progress


def scan_journals(directory: PathLike,
                  now: Optional[float] = None) -> List[Dict[str, Any]]:
    """Inspect every journal file under a journal directory (the layout
    ``repro-experiments --journal DIR`` writes).  An unreadable or
    corrupt journal becomes an ``{"journal": ..., "error": ...}`` entry
    instead of sinking the whole scan — a dashboard must keep rendering
    the healthy runs while one file is damaged."""
    directory = Path(directory)
    out: List[Dict[str, Any]] = []
    for suffix in JOURNAL_SUFFIXES:
        for path in sorted(directory.glob(f"*{suffix}")):
            try:
                out.append(inspect_progress(path, now))
            except (JournalError, OSError) as exc:
                out.append({"journal": str(path), "error": str(exc)})
    return out


def resolve_journal(journal: Union["RunJournal", PathLike],
                    point_keys: Sequence[str]) -> RunJournal:
    """Turn a journal argument into a :class:`RunJournal`.

    A path ending in one of :data:`JOURNAL_SUFFIXES` names a journal
    *file*; any other path is a journal *directory*, and the sweep gets a
    content-addressed file inside it (``<sweep_sha256[:16]>.wal``) — which
    is how ``repro-experiments --journal DIR`` resumes every inner sweep
    automatically without naming each one.
    """
    if isinstance(journal, RunJournal):
        return journal
    path = Path(journal)
    if path.suffix in JOURNAL_SUFFIXES:
        return RunJournal(path)
    return RunJournal(path / f"{sweep_sha256(point_keys)[:16]}.wal")
