"""Wire protocol for ``POST /v1/simulate``: parse, validate, render.

A request body is JSON::

    {
      "config":   { ...SystemConfig dict (repro.core.serialization)... },
      "workload": {"profiles": [ {...BenchmarkProfile dict...}, ... ]}
                  | {"suite": {"instructions_per_benchmark": N,
                               "level": L}},
      "time_slice": 30000,            // optional, cycles
      "level": 2,                     // optional, multiprogramming level
      "warmup_instructions": 0,       // optional
      "max_instructions": null,       // optional budget
      "deadline_s": 10.0,             // optional, clamped to the server max
      "engine": "reference",          // optional simulation engine
      "scenario": "ab12…",            // optional scenario_sha256 (64 hex);
                                      //   joins the content-address key
      "obs_trace": "8f3a…"            // optional caller trace ID (out of
    }                                 //   band: never part of the cache key)

Validation is the same machinery the simulator itself trusts —
:func:`repro.core.serialization.config_from_dict` (which calls
``SystemConfig.validate``) and ``profile_from_dict`` (which calls
``BenchmarkProfile.validate``) — so a request that parses here is exactly
a request the simulator accepts, and anything else raises
:class:`~repro.errors.ConfigurationError`/:class:`~repro.errors.ServeError`
which the server maps to a 400 with the message, never a traceback.

A successful response is also defined here (:func:`render_result`):
the full :class:`~repro.core.stats.SimStats` snapshot, the derived CPI,
the content-address ``key`` of the point, and whether the answer came
from the cache.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional, Tuple

from repro.core.engine import DEFAULT_ENGINE, ENGINE_NAMES
from repro.core.serialization import config_from_dict, profile_from_dict
from repro.core.stats import SimStats
from repro.errors import ConfigurationError, ServeError
from repro.farm.points import PointSpec
from repro.params import DEFAULT_TIME_SLICE

#: Protocol version; appears in responses and ``/metrics``.
PROTOCOL_VERSION = 1

_TOP_KEYS = {"config", "workload", "time_slice", "level",
             "warmup_instructions", "max_instructions", "deadline_s",
             "engine", "energy", "scenario", "obs_trace"}

#: Ceiling on a client-supplied trace ID; generous next to the 32-hex
#: IDs :func:`repro.obs.tracing.new_trace_id` mints.
_MAX_TRACE_ID_LEN = 128


def _require_int(body: Dict[str, Any], key: str, default: int,
                 minimum: int) -> int:
    value = body.get(key, default)
    if not isinstance(value, int) or isinstance(value, bool):
        raise ServeError(f"{key} must be an integer", status=400)
    if value < minimum:
        raise ServeError(f"{key} must be >= {minimum}", status=400)
    return value


def _parse_workload(spec: Any) -> Tuple:
    if not isinstance(spec, dict):
        raise ServeError("workload must be an object", status=400)
    has_profiles = "profiles" in spec
    has_suite = "suite" in spec
    if has_profiles == has_suite:
        raise ServeError(
            "workload needs exactly one of 'profiles' or 'suite'",
            status=400)
    if has_profiles:
        raw = spec["profiles"]
        if not isinstance(raw, list) or not raw:
            raise ServeError("workload.profiles must be a non-empty list",
                             status=400)
        return tuple(profile_from_dict(p) for p in raw)
    suite = spec["suite"]
    if not isinstance(suite, dict):
        raise ServeError("workload.suite must be an object", status=400)
    unknown = set(suite) - {"instructions_per_benchmark", "level"}
    if unknown:
        raise ServeError(
            f"unknown workload.suite key(s): {', '.join(sorted(unknown))}",
            status=400)
    instructions = suite.get("instructions_per_benchmark", 0)
    if not isinstance(instructions, int) or instructions < 0:
        raise ServeError(
            "workload.suite.instructions_per_benchmark must be a "
            "non-negative integer", status=400)
    level = suite.get("level")
    from repro.trace.benchmarks import default_suite, replicate_suite

    profiles = default_suite(instructions)
    if level is not None:
        if not isinstance(level, int) or level < 1:
            raise ServeError("workload.suite.level must be a positive "
                             "integer", status=400)
        profiles = (profiles[:level] if level <= len(profiles)
                    else replicate_suite(profiles, level))
    return tuple(profiles)


def parse_simulate_request(raw: bytes,
                           max_body_bytes: int = 1 << 20
                           ) -> Tuple[PointSpec, Optional[float],
                                      Optional[str]]:
    """Parse and validate a simulate request body.

    Returns the fully validated :class:`PointSpec`, the client's
    requested ``deadline_s`` (or ``None``), and the client's ``obs_trace``
    ID (or ``None``) — the caller's trace handle, propagated so one
    logical dispatch keeps one trace ID across the grid → serve → worker
    hops.  Raises :class:`~repro.errors.ServeError` (status 400) or
    :class:`~repro.errors.ConfigurationError` for every malformed input.
    """
    if len(raw) > max_body_bytes:
        raise ServeError(
            f"request body exceeds {max_body_bytes} bytes", status=400)
    try:
        body = json.loads(raw.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ServeError(f"invalid JSON: {exc}", status=400) from exc
    if not isinstance(body, dict):
        raise ServeError("request body must be a JSON object", status=400)
    unknown = set(body) - _TOP_KEYS
    if unknown:
        raise ServeError(
            f"unknown request key(s): {', '.join(sorted(unknown))}",
            status=400)
    if "config" not in body or "workload" not in body:
        raise ServeError("request needs 'config' and 'workload'", status=400)
    if not isinstance(body["config"], dict):
        raise ServeError("config must be an object", status=400)
    config = config_from_dict(body["config"])  # ConfigurationError on junk
    profiles = _parse_workload(body["workload"])

    time_slice = _require_int(body, "time_slice", DEFAULT_TIME_SLICE, 1)
    warmup = _require_int(body, "warmup_instructions", 0, 0)
    level = body.get("level")
    if level is not None:
        if not isinstance(level, int) or isinstance(level, bool) or level < 1:
            raise ServeError("level must be a positive integer", status=400)
        if level > len(profiles):
            raise ServeError(
                f"level {level} exceeds the {len(profiles)}-process "
                "workload", status=400)
    max_instructions = body.get("max_instructions")
    if max_instructions is not None:
        if (not isinstance(max_instructions, int)
                or isinstance(max_instructions, bool)
                or max_instructions < 1):
            raise ServeError("max_instructions must be a positive integer",
                             status=400)
    deadline_s = body.get("deadline_s")
    if deadline_s is not None:
        if not isinstance(deadline_s, (int, float)) \
                or isinstance(deadline_s, bool) or deadline_s <= 0:
            raise ServeError("deadline_s must be a positive number",
                             status=400)
        deadline_s = float(deadline_s)
    engine = body.get("engine", DEFAULT_ENGINE)
    if not isinstance(engine, str) or engine not in ENGINE_NAMES:
        raise ServeError(
            f"unknown engine {engine!r} "
            f"(available: {', '.join(ENGINE_NAMES)})", status=400)
    energy = body.get("energy")
    if energy is not None:
        from repro.energy import ENERGY_TECHNOLOGIES

        if not isinstance(energy, str) or energy not in ENERGY_TECHNOLOGIES:
            raise ServeError(
                f"unknown energy technology {energy!r} "
                f"(available: {', '.join(sorted(ENERGY_TECHNOLOGIES))})",
                status=400)
    scenario = body.get("scenario")
    if scenario is not None:
        if (not isinstance(scenario, str) or len(scenario) != 64
                or any(c not in "0123456789abcdef" for c in scenario)):
            raise ServeError(
                "scenario must be a 64-character lowercase hex "
                "scenario_sha256", status=400)
    obs_trace = body.get("obs_trace")
    if obs_trace is not None:
        if not isinstance(obs_trace, str) or not obs_trace \
                or len(obs_trace) > _MAX_TRACE_ID_LEN:
            raise ServeError(
                "obs_trace must be a non-empty string of at most "
                f"{_MAX_TRACE_ID_LEN} characters", status=400)

    spec = PointSpec(label=config.name, config=config, profiles=profiles,
                     time_slice=time_slice, level=level,
                     warmup_instructions=warmup,
                     max_instructions=max_instructions, engine=engine,
                     energy=energy, scenario=scenario)
    return spec, deadline_s, obs_trace


def stats_digest(snapshot: Dict[str, Any]) -> str:
    """Integrity digest of a stats snapshot: SHA-256 over its canonical
    JSON encoding (sorted keys, no whitespace).

    The content-address ``key`` authenticates *which point* a response
    answers; this digest authenticates *the answer itself*.  A response
    whose stats were damaged in flight — or forwarded from a corrupted
    cache — still carries the right key, but cannot carry a matching
    digest unless every field survived bit-exactly.  The grid dispatcher
    rejects any response where the two disagree.
    """
    canonical = json.dumps(snapshot, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def render_result(spec: PointSpec, stats: SimStats, key: str,
                  cached: bool, wall_s: float) -> Dict[str, Any]:
    """The JSON body of a 200 response.

    Energy-free requests get the historical shape; when the request
    selected an energy technology the response adds the EPI figure and
    the per-class breakdown next to CPI (the raw femtojoule fields ride
    inside ``stats`` either way).
    """
    snapshot = stats.to_dict()
    body = {
        "version": PROTOCOL_VERSION,
        "key": key,
        "cached": cached,
        "engine": spec.engine,
        "wall_s": round(wall_s, 6),
        "cpi": stats.cpi(spec.config.cpu_stall_cpi),
        "stats": snapshot,
        "stats_sha256": stats_digest(snapshot),
    }
    if spec.energy is not None:
        body["energy"] = spec.energy
        body["epi_pj"] = round(stats.epi_pj, 4)
        body["energy_pj"] = {cls: round(pj, 1) for cls, pj
                             in stats.energy_breakdown_pj().items()}
    return body


def error_body(status: int, message: str, **extra: Any) -> Dict[str, Any]:
    """The JSON body of every non-200 response: explicit, never a
    traceback."""
    return {"version": PROTOCOL_VERSION, "status": status,
            "error": message, **extra}
