"""Chaos harness: prove the service degrades, never lies.

The harness boots a real :class:`~repro.serve.server.SimServer`, hammers
it from concurrent :class:`~repro.serve.client.ServeClient` threads, and
meanwhile attacks it on three fronts:

* **cache corruption** — a saboteur thread byte-flips random cache
  entries on disk (via :meth:`~repro.robust.faults.FaultInjector
  .corrupt_file`) while requests are being served from them;
* **worker crashes** — :data:`~repro.robust.faults.WORKER_FAULT_ENV` is
  armed so forked simulation workers randomly ``os._exit`` mid-task;
* **worker stalls** — the same hook randomly puts workers to sleep,
  driving requests into their deadlines.

The contract it asserts, request by request:

1. every 200 carries statistics **bit-identical** to a direct
   :func:`~repro.analysis.sweep.run_point` of the same spec (the ground
   truth is computed up front, before any fault is armed) — corruption
   and crashes may cost retries and misses, never a wrong CPI;
2. every failure is an *explicit, classified* status (429/5xx with a
   JSON error body) — no hangs, no tracebacks, no silent drops;
3. after the storm, a drain started while requests are still in flight
   completes within its grace period and leaves no live worker
   processes behind.

:func:`run_chaos` returns a :class:`ChaosReport`; ``report.passed`` is
the single bit CI cares about.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import random
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.core.config import base_architecture
from repro.errors import ServeError
from repro.farm.cache import ResultCache
from repro.robust.faults import (
    WORKER_FAULT_ENV,
    FaultInjector,
    worker_fault_spec,
)
from repro.serve.client import CircuitBreaker, RetryPolicy, ServeClient
from repro.serve.server import ServeSettings, SimServer
from repro.trace.benchmarks import default_suite


@dataclass
class ChaosSettings:
    """Knobs for one chaos run; defaults are CI-sized (seconds, not
    minutes)."""

    duration_s: float = 6.0
    clients: int = 4
    #: Distinct sweep points the clients draw from (repeats exercise the
    #: cache; corruption then exercises its verification).
    points: int = 3
    instructions: int = 6000
    level: int = 1
    time_slice: int = 2000
    deadline_s: float = 15.0
    #: Every Nth request per client is a *hopeless* one: a heavy, never
    #: cached point with a deadline far below its simulation time.  These
    #: must come back as explicit 504s, proving deadline enforcement.
    hopeless_every: int = 8
    hopeless_deadline_s: float = 0.05
    #: Saboteur interval between cache-entry corruptions.
    corrupt_every_s: float = 0.2
    worker_crash_p: float = 0.25
    #: Stalls pin the (single) executor, which is what fills the queue
    #: and forces 429 shedding.
    worker_stall_p: float = 0.35
    worker_stall_s: float = 1.2
    queue_depth: int = 2
    workers: int = 1
    retries: int = 3
    drain_grace_s: float = 30.0
    isolation: str = "auto"
    seed: int = 0


@dataclass
class ChaosReport:
    """What the storm produced."""

    requests: int = 0
    ok: int = 0
    ok_cached: int = 0
    shed: int = 0
    hopeless_sent: int = 0
    deadline_expired: int = 0
    unavailable: int = 0
    server_error: int = 0
    gave_up: int = 0
    transport_errors: int = 0
    corruptions_injected: int = 0
    violations: List[str] = field(default_factory=list)
    drain: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return not self.violations

    def render(self) -> str:
        lines = [
            "== chaos report ==",
            f"requests          : {self.requests}",
            f"  ok / cached     : {self.ok} / {self.ok_cached}",
            f"  shed (429)      : {self.shed}",
            f"  hopeless sent   : {self.hopeless_sent}",
            f"  deadline (504)  : {self.deadline_expired}",
            f"  unavailable     : {self.unavailable}",
            f"  server error    : {self.server_error}",
            f"  client gave up  : {self.gave_up}",
            f"  transport       : {self.transport_errors}",
            f"corruptions       : {self.corruptions_injected}",
            f"drain clean       : {self.drain.get('clean')}",
            f"drain cancelled   : {self.drain.get('cancelled')}",
            f"violations        : {len(self.violations)}",
        ]
        lines.extend(f"  VIOLATION: {v}" for v in self.violations)
        return "\n".join(lines)


def _chaos_requests(settings: ChaosSettings) -> List[Dict[str, Any]]:
    """The request bodies clients draw from: one config, ``points``
    distinct workload sizes (distinct content addresses)."""
    config = base_architecture()
    from repro.core.serialization import config_to_dict, profile_to_dict

    bodies = []
    for i in range(settings.points):
        instructions = settings.instructions + 500 * i
        profiles = default_suite(instructions)[:settings.level]
        bodies.append({
            "config": config_to_dict(config),
            "workload": {"profiles": [profile_to_dict(p) for p in profiles]},
            "time_slice": settings.time_slice,
            "level": settings.level,
            "deadline_s": settings.deadline_s,
        })
    return bodies


def _hopeless_request(settings: ChaosSettings) -> Dict[str, Any]:
    """A request whose deadline is far below its simulation time.

    It can never finish (and therefore never lands in the cache), so the
    service has exactly one honest answer: an explicit 504.  Anything
    else — a 200, a hang, a traceback — is a contract violation.
    """
    config = base_architecture()
    from repro.core.serialization import config_to_dict, profile_to_dict

    instructions = max(200_000, settings.instructions * 20)
    profiles = default_suite(instructions)[:settings.level]
    return {
        "config": config_to_dict(config),
        "workload": {"profiles": [profile_to_dict(p) for p in profiles]},
        "time_slice": settings.time_slice,
        "level": settings.level,
        "deadline_s": settings.hopeless_deadline_s,
    }


def _ground_truth(settings: ChaosSettings,
                  bodies: List[Dict[str, Any]]) -> List[Dict[str, int]]:
    """Direct, fault-free, cache-free simulations of every point —
    computed before any fault is armed.  Uses the bare simulator (not the
    farm), so the comparison is service-vs-silicon, nothing shared."""
    from repro.core.serialization import config_from_dict, profile_from_dict
    from repro.core.simulator import simulate

    truths = []
    for body in bodies:
        config = config_from_dict(dict(body["config"]))
        profiles = [profile_from_dict(p)
                    for p in body["workload"]["profiles"]]
        stats = simulate(config, profiles, time_slice=body["time_slice"],
                         level=body["level"])
        truths.append(stats.to_dict())
    return truths


class _Saboteur(threading.Thread):
    """Byte-flips random cache entries until told to stop."""

    def __init__(self, cache_root: Path, period_s: float, seed: int):
        super().__init__(name="chaos-saboteur", daemon=True)
        self.cache_root = cache_root
        self.period_s = period_s
        self.injector = FaultInjector(seed=seed)
        self.rng = random.Random(seed)
        self.stop = threading.Event()
        self.corruptions = 0

    def run(self) -> None:
        while not self.stop.wait(self.period_s):
            entries = list(self.cache_root.glob("*.json"))
            if not entries:
                continue
            target = self.rng.choice(entries)
            try:
                self.injector.corrupt_file(
                    target, offset=self.rng.randrange(64),
                    kind="corrupt_cache_entry")
                self.corruptions += 1
            except (OSError, IndexError, ValueError):
                continue  # entry vanished or shrank mid-flip: fine


def _client_loop(client: ServeClient, bodies: List[Dict[str, Any]],
                 truths: List[Dict[str, int]], hopeless: Dict[str, Any],
                 hopeless_every: int, stop_at: float,
                 rng: random.Random, report: ChaosReport,
                 lock: threading.Lock) -> None:
    sent = 0
    while time.monotonic() < stop_at:
        sent += 1
        is_hopeless = hopeless_every > 0 and sent % hopeless_every == 0
        index = rng.randrange(len(bodies))
        body = dict(hopeless) if is_hopeless else dict(bodies[index])
        with lock:
            report.requests += 1
            if is_hopeless:
                report.hopeless_sent += 1
        try:
            # Hopeless requests get a short budget: every attempt is a
            # guaranteed 504, so retrying them at length proves nothing.
            result = client.simulate(
                body, budget_s=1.0 if is_hopeless else 10.0)
        except ServeError as exc:
            with lock:
                if exc.status == 429:
                    report.shed += 1
                elif exc.status == 504:
                    report.deadline_expired += 1
                elif exc.status == 503:
                    report.unavailable += 1
                elif exc.status == 500:
                    report.server_error += 1
                elif exc.status == 0:
                    report.transport_errors += 1
                    report.gave_up += 1
                else:
                    report.violations.append(
                        f"unclassified failure status {exc.status}: {exc}")
            continue
        with lock:
            if is_hopeless:
                report.violations.append(
                    "hopeless request (deadline far below simulation time) "
                    "returned 200 — deadline not enforced")
                continue
            report.ok += 1
            if result.get("cached"):
                report.ok_cached += 1
            if result.get("stats") != truths[index]:
                report.violations.append(
                    f"point {index}: 200 response diverged from ground "
                    f"truth (cached={result.get('cached')})")


def run_chaos(settings: Optional[ChaosSettings] = None,
              cache_dir: Optional[Path] = None,
              stream=None) -> ChaosReport:
    """Run the full storm against an in-process server; see module doc."""
    settings = settings or ChaosSettings()
    report = ChaosReport()
    lock = threading.Lock()

    bodies = _chaos_requests(settings)
    truths = _ground_truth(settings, bodies)
    hopeless = _hopeless_request(settings)

    if cache_dir is None:
        import tempfile

        tmp = tempfile.TemporaryDirectory(prefix="repro-chaos-cache-")
        cache_dir = Path(tmp.name)
    else:
        tmp = None
        cache_dir = Path(cache_dir)
    cache = ResultCache(cache_dir)

    server = SimServer(
        ServeSettings(port=0,
                      queue_depth=settings.queue_depth,
                      workers=settings.workers,
                      default_deadline_s=settings.deadline_s,
                      max_deadline_s=max(settings.deadline_s, 30.0),
                      drain_grace_s=settings.drain_grace_s,
                      retries=settings.retries,
                      isolation=settings.isolation),
        cache=cache)
    server.start()
    base_url = f"http://127.0.0.1:{server.port}"

    saboteur = _Saboteur(cache_dir, settings.corrupt_every_s, settings.seed)
    previous_faults = os.environ.get(WORKER_FAULT_ENV)
    os.environ[WORKER_FAULT_ENV] = worker_fault_spec(
        crash=settings.worker_crash_p,
        stall=settings.worker_stall_p,
        stall_s=settings.worker_stall_s)
    try:
        saboteur.start()
        stop_at = time.monotonic() + settings.duration_s
        threads = []
        for i in range(settings.clients):
            client = ServeClient(
                base_url,
                retry=RetryPolicy(max_attempts=4, base_delay_s=0.05,
                                  max_delay_s=0.5),
                breaker=CircuitBreaker(failure_threshold=10, cooldown_s=0.5),
                timeout_s=settings.deadline_s + 5.0,
                rng=random.Random(settings.seed + i))
            thread = threading.Thread(
                target=_client_loop,
                args=(client, bodies, truths, hopeless,
                      settings.hopeless_every, stop_at,
                      random.Random(1000 + settings.seed + i), report, lock),
                name=f"chaos-client-{i}", daemon=True)
            thread.start()
            threads.append(thread)
        for thread in threads:
            thread.join(timeout=settings.duration_s + 60.0)

        # Metrics must be a well-formed snapshot while still serving.
        metrics = json.loads(json.dumps(server.status_snapshot()))
        for key in ("requests_total", "responses", "executor", "queue",
                    "farm", "draining"):
            if key not in metrics:
                report.violations.append(f"/metrics is missing '{key}'")
        report.metrics = metrics

        # Drain while the tail of the load may still be in flight.
        drain_started = time.monotonic()
        summary = server.drain()
        drain_wall = time.monotonic() - drain_started
        report.drain = {"clean": summary["clean"],
                        "cancelled": summary["cancelled"],
                        "wall_s": round(drain_wall, 3)}
        if drain_wall > settings.drain_grace_s + 5.0:
            report.violations.append(
                f"drain took {drain_wall:.1f}s, grace was "
                f"{settings.drain_grace_s:g}s")
        leftover = multiprocessing.active_children()
        if leftover:
            report.violations.append(
                f"{len(leftover)} worker process(es) left alive after drain")
    finally:
        saboteur.stop.set()
        saboteur.join(timeout=2.0)
        if previous_faults is None:
            os.environ.pop(WORKER_FAULT_ENV, None)
        else:
            os.environ[WORKER_FAULT_ENV] = previous_faults
        if tmp is not None:
            tmp.cleanup()
    report.corruptions_injected = saboteur.corruptions
    if report.ok == 0:
        report.violations.append(
            "no request succeeded at all — the service never degraded "
            "gracefully, it just failed")
    if report.hopeless_sent > 0 and report.deadline_expired == 0:
        report.violations.append(
            f"{report.hopeless_sent} hopeless request(s) sent but no 504 "
            f"ever came back — deadlines are not being enforced")
    # Under fork isolation the injected stalls pin the single executor,
    # so a full-length storm must fill the queue and shed at least once.
    if (report.metrics.get("isolation") == "fork"
            and settings.duration_s >= 4.0 and report.shed == 0):
        report.violations.append(
            "full-length storm with stalling workers never produced a "
            "429 — load shedding is not working")
    if stream is not None:
        print(report.render(), file=stream, flush=True)
    return report
