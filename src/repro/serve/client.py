"""A robust client for the simulation service.

:class:`ServeClient` wraps ``POST /v1/simulate`` with the three defences
a client of a load-shedding service needs:

* **Retries with exponential backoff and full jitter** — transient
  failures (connection errors, 429, 503, 504) are retried with a delay
  drawn uniformly from ``[0, min(cap, base * 2**attempt)]`` (the "full
  jitter" scheme), so a thundering herd of clients decorrelates itself.
  A server-provided ``Retry-After`` is honored as the *floor* of the next
  delay: the server knows its queue better than the client's schedule.
* **A total deadline budget** — every call takes a wall-clock budget
  covering all attempts and sleeps; the client never spends longer than
  the caller allowed, and raises :class:`~repro.errors.ServeError` with
  the last status seen when the budget is exhausted.
* **A circuit breaker** — after ``failure_threshold`` consecutive
  transport-level failures the circuit *opens* and calls fail fast
  (status 0, no network traffic) for ``cooldown_s``; it then *half-opens*,
  letting one probe through — success closes the circuit, failure
  re-opens it.  This keeps a dead server from absorbing every caller's
  full retry budget.

Permanent errors (400 bad request, 404) are never retried: the request
will not get better by asking again.
"""

from __future__ import annotations

import json
import random
import socket
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import ConfigurationError, ServeError

#: HTTP statuses worth retrying: shedding, draining, deadline expiry.
RETRYABLE_STATUSES = frozenset({429, 502, 503, 504})


@dataclass
class RetryPolicy:
    """Exponential backoff with full jitter."""

    max_attempts: int = 5
    base_delay_s: float = 0.1
    max_delay_s: float = 5.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts!r}: "
                "every request needs at least one attempt")
        if self.base_delay_s < 0:
            raise ConfigurationError(
                f"base_delay_s must be >= 0, got {self.base_delay_s!r}")
        if self.max_delay_s < self.base_delay_s:
            raise ConfigurationError(
                f"max_delay_s ({self.max_delay_s!r}) must be >= "
                f"base_delay_s ({self.base_delay_s!r})")

    def delay(self, attempt: int, rng: random.Random,
              retry_after: Optional[float] = None) -> float:
        """The sleep before retry ``attempt`` (0-based), honoring a
        server-provided ``Retry-After`` as a floor."""
        cap = min(self.max_delay_s, self.base_delay_s * (2 ** attempt))
        delay = rng.uniform(0.0, cap)
        if retry_after is not None:
            delay = max(delay, retry_after)
        return delay


class CircuitBreaker:
    """Closed → open after N consecutive failures → half-open after a
    cooldown → closed again on a successful probe."""

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"

    def __init__(self, failure_threshold: int = 5, cooldown_s: float = 5.0,
                 clock: Callable[[], float] = time.monotonic):
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got "
                f"{failure_threshold!r}: a breaker needs at least one "
                "failure before opening")
        if not cooldown_s > 0:
            raise ConfigurationError(
                f"cooldown_s must be positive, got {cooldown_s!r}")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False

    def snapshot(self) -> Dict[str, Any]:
        """Read-only view (state, consecutive failures) for placement
        decisions and ``metrics()``; never consumes the half-open probe."""
        return {"state": self.state,
                "consecutive_failures": self._failures,
                "failure_threshold": self.failure_threshold}

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return self.CLOSED
        if self._clock() - self._opened_at >= self.cooldown_s:
            return self.HALF_OPEN
        return self.OPEN

    def allow(self) -> bool:
        """Whether a call may proceed right now.

        In the half-open state exactly one in-flight probe is allowed;
        further calls fail fast until the probe reports back.
        """
        state = self.state
        if state == self.CLOSED:
            return True
        if state == self.HALF_OPEN and not self._probing:
            self._probing = True
            return True
        return False

    def record_success(self) -> None:
        self._failures = 0
        self._opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        self._probing = False
        self._failures += 1
        if self._failures >= self.failure_threshold:
            self._opened_at = self._clock()


class BreakerPool:
    """One :class:`CircuitBreaker` **per backend node**, keyed by URL.

    A fleet-facing caller (the grid dispatcher, or several
    :class:`ServeClient` instances pointed at different backends) shares
    one pool: a dead node opens *its* breaker and fails fast, while
    healthy nodes keep their own closed breakers — one bad backend can
    no longer blind a client to the rest of the pool, which is what a
    single global breaker did.

    Thread-safe; breakers are created on first use and live for the
    pool's lifetime.
    """

    def __init__(self, failure_threshold: int = 5, cooldown_s: float = 5.0,
                 clock: Callable[[], float] = time.monotonic):
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: Dict[str, CircuitBreaker] = {}

    @staticmethod
    def _normalize(base_url: str) -> str:
        return base_url.rstrip("/")

    def for_node(self, base_url: str) -> CircuitBreaker:
        """The (shared, lazily created) breaker guarding one backend."""
        key = self._normalize(base_url)
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(self.failure_threshold,
                                         self.cooldown_s, clock=self._clock)
                self._breakers[key] = breaker
            return breaker

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Per-node breaker state, keyed by normalized URL."""
        with self._lock:
            items = list(self._breakers.items())
        return {url: breaker.snapshot() for url, breaker in items}


@dataclass
class ServeClient:
    """A retrying, deadline-bounded, circuit-broken service client.

    Args:
        base_url: e.g. ``http://127.0.0.1:8023``.
        retry: backoff policy.
        breaker: circuit breaker (share one instance across threads
            talking to the same server).
        breakers: optional :class:`BreakerPool`; when given, this
            client's ``breaker`` is the pool's per-node breaker for
            ``base_url`` (clients of *other* nodes drawing from the same
            pool keep independent breakers).
        timeout_s: per-attempt socket timeout.
        sleep: injectable for tests.
        rng: injectable jitter source for tests.
    """

    base_url: str
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker: CircuitBreaker = field(default_factory=CircuitBreaker)
    breakers: Optional[BreakerPool] = None
    timeout_s: float = 30.0
    sleep: Callable[[float], None] = time.sleep
    rng: random.Random = field(default_factory=random.Random)

    def __post_init__(self) -> None:
        if self.breakers is not None:
            self.breaker = self.breakers.for_node(self.base_url)

    # ------------------------------------------------------------- transport

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None,
                 timeout_s: Optional[float] = None):
        """One attempt; returns ``(status, parsed_json, headers)``.

        Transport-level failures (refused, reset, timeout) are reported
        as status 0 with a synthesized body.
        """
        url = self.base_url.rstrip("/") + path
        data = None if body is None else json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            url, data=data, method=method,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(
                    request,
                    timeout=self.timeout_s if timeout_s is None
                    else timeout_s) as response:
                payload = _parse(response.read())
                return response.status, payload, dict(response.headers)
        except urllib.error.HTTPError as exc:
            payload = _parse(exc.read())
            return exc.code, payload, dict(exc.headers or {})
        except (urllib.error.URLError, socket.timeout, ConnectionError,
                TimeoutError) as exc:
            reason = getattr(exc, "reason", exc)
            return 0, {"error": f"connection failed: {reason}"}, {}

    # ------------------------------------------------------------- endpoints

    def simulate(self, request: Dict[str, Any],
                 budget_s: Optional[float] = None) -> Dict[str, Any]:
        """Run one point through the service; returns the 200 body.

        Args:
            request: the ``/v1/simulate`` body (see
                :mod:`repro.serve.protocol`).
            budget_s: total wall-clock allowance across every attempt and
                backoff sleep (default: ``retry.max_attempts *
                timeout_s``).

        Raises:
            ServeError: permanent rejection (carries the 4xx status), the
                circuit is open, or retries/budget ran out (carries the
                last status seen; 0 means the server was never reached).
        """
        if budget_s is None:
            budget_s = self.retry.max_attempts * self.timeout_s
        give_up_at = time.monotonic() + budget_s
        last_status, last_error = 0, "no attempt made"
        for attempt in range(self.retry.max_attempts):
            if not self.breaker.allow():
                raise ServeError(
                    f"circuit breaker is {self.breaker.state}; "
                    f"last error: {last_error}", status=last_status)
            remaining = give_up_at - time.monotonic()
            if remaining <= 0:
                break
            status, payload, headers = self._request(
                "POST", "/v1/simulate", request,
                timeout_s=min(self.timeout_s, remaining))
            if status == 200:
                self.breaker.record_success()
                return payload
            last_status = status
            last_error = (payload or {}).get("error", f"HTTP {status}")
            if status == 0:
                self.breaker.record_failure()
            else:
                # The server answered: it is alive, however unhappy —
                # that is not the failure mode the breaker guards against.
                self.breaker.record_success()
            if status not in RETRYABLE_STATUSES and status != 0:
                raise ServeError(f"request rejected: {last_error}",
                                 status=status)
            retry_after = _retry_after(headers)
            delay = self.retry.delay(attempt, self.rng, retry_after)
            remaining = give_up_at - time.monotonic()
            if remaining <= 0 or delay > remaining:
                break
            self.sleep(delay)
        raise ServeError(
            f"gave up after retries/budget: {last_error}",
            status=last_status)

    def metrics(self) -> Dict[str, Any]:
        """The server's ``/metrics`` snapshot (no retries), augmented
        with this client's local view under ``"client"`` — the breaker
        state the dispatcher needs for placement decisions (the server's
        own queue gauges ride in the snapshot's ``"queue"`` key)."""
        status, payload, _ = self._request("GET", "/metrics")
        if status != 200:
            raise ServeError(f"metrics unavailable: HTTP {status}",
                             status=status)
        payload["client"] = self.client_state()
        return payload

    def client_state(self) -> Dict[str, Any]:
        """This client's local knowledge of its backend: the per-node
        circuit-breaker state (works even when the server is down, which
        is exactly when placement needs it)."""
        return {"node": self.base_url.rstrip("/"),
                "breaker": self.breaker.snapshot()}

    def ready(self) -> bool:
        """Whether the server is accepting work right now."""
        status, _, _ = self._request("GET", "/readyz")
        return status == 200

    def readiness(self,
                  timeout_s: Optional[float] = None
                  ) -> Tuple[bool, Dict[str, Any]]:
        """One ``/readyz`` probe: ``(accepting, body)``.

        The body carries the server's load signals (admission queue
        depth, in-flight count, engine list) for load-aware dispatch; a
        transport failure yields ``(False, {"error": ...})``.
        """
        status, payload, _ = self._request("GET", "/readyz",
                                           timeout_s=timeout_s)
        return status == 200, payload if isinstance(payload, dict) else {}

    def healthy(self) -> bool:
        """Whether the server process is up at all."""
        status, _, _ = self._request("GET", "/healthz")
        return status == 200


def _parse(blob: bytes) -> Dict[str, Any]:
    try:
        parsed = json.loads(blob.decode("utf-8"))
        return parsed if isinstance(parsed, dict) else {"body": parsed}
    except (json.JSONDecodeError, UnicodeDecodeError):
        return {"error": "unparsable response body"}


def _retry_after(headers: Dict[str, str]) -> Optional[float]:
    for name, value in headers.items():
        if name.lower() == "retry-after":
            try:
                return max(0.0, float(value))
            except ValueError:
                return None
    return None
