"""The fault-tolerant simulation service.

``repro-serve`` turns the sweep farm into an interactive service: a
threaded HTTP front end answering ``POST /v1/simulate`` (a validated
:class:`~repro.farm.points.PointSpec` in JSON) backed by the farm's
content-addressed :class:`~repro.farm.cache.ResultCache`, so a repeated
configuration→CPI query costs a file read instead of a simulation.

Failure model (see DESIGN.md §10 for the full policy):

* **Overload** — admission goes through a bounded queue.  A full queue
  sheds the request immediately with ``429`` and a ``Retry-After`` header;
  the server never builds an unbounded backlog and latency stays bounded
  by design.
* **Deadlines** — every request carries a deadline (client-supplied
  ``deadline_s``, clamped to a server maximum).  The clock starts at
  admission, so time spent queued counts.  Expiry anywhere — still
  queued, or mid-simulation — yields ``504``; under fork isolation the
  farm pool's timeout machinery *kills* the worker so a runaway
  simulation cannot hold a slot.
* **Worker faults** — simulations run in forked pool workers (when the
  platform can fork); a crashed worker is retried within the pool's
  budget, a stalled one is bounded by the deadline.  Either the client
  gets a correct result or an explicit 5xx — never a wrong CPI, because
  results are only ever produced by the same ``execute_point`` the batch
  farm uses and cache entries are checksummed (corruption = miss).
* **Shutdown** — SIGTERM/SIGINT starts a graceful drain: readiness goes
  503, new work is rejected, queued and in-flight simulations get a grace
  period to finish; whatever is still running when the grace expires is
  cancelled (fork isolation) or checkpointed via
  :mod:`repro.robust.checkpoint` to the spool directory (inline
  isolation) so the work is resumable.  The process then exits 0.

Observability: ``GET /healthz`` (liveness), ``GET /readyz`` (admission
state), ``GET /metrics`` (JSON counters: per-class response counts,
executor outcomes, queue gauges, cache and
:class:`~repro.farm.telemetry.RunTelemetry` summaries).
"""

from __future__ import annotations

import json
import queue
import threading
import time
import urllib.parse
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.core.stats import SimStats
from repro.errors import (
    ConfigurationError,
    FarmCancelled,
    FarmError,
    ReproError,
    ServeError,
)
from repro.farm.cache import ResultCache
from repro.farm.points import PointSpec, execute_point
from repro.farm.pool import fork_available, run_tasks
from repro.farm.telemetry import RunTelemetry
from repro.obs.metrics import (
    PROMETHEUS_CONTENT_TYPE,
    Registry,
    merge_snapshots,
    render_prometheus,
)
from repro.obs.tracing import Trace, span
from repro.robust.signals import SignalDrain
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    error_body,
    parse_simulate_request,
    render_result,
)

#: How often drain/worker loops poll their events, seconds.
_TICK = 0.05

#: Bound on the deduplicated recent-trace-ID window ``/metrics`` reports.
RECENT_TRACES_MAX = 16


@dataclass
class ServeSettings:
    """Tunable policy for one :class:`SimServer`."""

    host: str = "127.0.0.1"
    port: int = 8023
    #: Bounded admission queue: requests beyond this are shed with 429.
    queue_depth: int = 8
    #: Executor threads pulling from the queue.
    workers: int = 2
    #: Deadline applied when the client does not send ``deadline_s``.
    default_deadline_s: float = 30.0
    #: Hard ceiling on any client-requested deadline.
    max_deadline_s: float = 120.0
    #: How long a drain lets queued + in-flight work finish.
    drain_grace_s: float = 10.0
    #: ``Retry-After`` value attached to shed (429) responses.
    retry_after_s: float = 1.0
    #: Crash/timeout re-runs granted to a simulation's pool worker.
    retries: int = 1
    #: ``"fork"`` (pool worker per simulation, hard kills), ``"inline"``
    #: (in-thread, cooperative deadline, drain-checkpointing), or
    #: ``"auto"`` (fork when the platform supports it).
    isolation: str = "auto"
    #: Spool directory for drain checkpoints (inline isolation).
    checkpoint_dir: Optional[Path] = None
    max_body_bytes: int = 1 << 20
    #: Forked-worker liveness beat period (long-deadline requests only).
    worker_heartbeat_s: float = 2.0
    #: A forked worker whose deadline exceeds this must heartbeat; a
    #: lease expiring with no beat means *stuck*, and the pool kills and
    #: retries it instead of burning the whole request deadline.
    worker_lease_s: float = 15.0

    def __post_init__(self):
        if self.queue_depth < 1:
            raise ConfigurationError(
                f"queue_depth must be >= 1, got {self.queue_depth!r}")
        if self.workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1, got {self.workers!r}")
        if self.retries < 0:
            raise ConfigurationError(
                f"retries must be >= 0, got {self.retries!r}")
        for name in ("default_deadline_s", "max_deadline_s",
                     "drain_grace_s", "retry_after_s", "max_body_bytes",
                     "worker_heartbeat_s", "worker_lease_s"):
            value = getattr(self, name)
            if not value > 0:
                raise ConfigurationError(
                    f"{name} must be positive, got {value!r}")
        if self.worker_heartbeat_s > self.worker_lease_s / 2:
            raise ConfigurationError(
                f"worker_heartbeat_s ({self.worker_heartbeat_s:g}) must "
                f"be at most half of worker_lease_s "
                f"({self.worker_lease_s:g}); a lease needs several beats "
                "of slack or healthy workers get reaped")
        if self.isolation not in ("auto", "fork", "inline"):
            raise ConfigurationError(
                f"isolation must be 'auto', 'fork', or 'inline', got "
                f"{self.isolation!r}")

    def effective_isolation(self) -> str:
        if self.isolation == "auto":
            return "fork" if fork_available() else "inline"
        return self.isolation


#: Response classes pre-seeded so ``/metrics`` always shows every key.
_RESPONSE_CLASSES = ("ok", "bad_request", "not_found", "shed",
                     "unavailable", "deadline_expired", "internal_error")
#: Executor outcomes, likewise pre-seeded.
_EXECUTOR_OUTCOMES = ("cache_hits", "simulated", "cancelled",
                      "checkpointed", "failed", "expired_in_queue")


class Metrics:
    """Service counters on a :class:`repro.obs.metrics.Registry`.

    ``responses`` counts what simulate clients were told, exactly one
    bump per simulate request; ``executor`` counts what the execution
    side did (a request the handler answered 504 can still show up as
    ``executor.cancelled`` — that is the abandoned work being reaped,
    not a second response).  :meth:`snapshot` keeps the historical
    ``/metrics`` JSON shape, derived from the registry; the raw registry
    snapshot rides alongside it under the ``obs`` key, and per-instance
    registries keep concurrent servers in one test process independent.
    """

    def __init__(self, registry: Optional[Registry] = None) -> None:
        self.registry = registry if registry is not None else Registry()
        self._requests = self.registry.counter(
            "serve_requests_total", "HTTP requests by endpoint",
            labels=("endpoint",))
        self._responses = self.registry.counter(
            "serve_responses_total", "simulate responses by class",
            labels=("class",))
        self._executor = self.registry.counter(
            "serve_executor_total", "executor outcomes",
            labels=("outcome",))
        self._lease_renewals = self.registry.counter(
            "serve_lease_renewals_total",
            "forked-worker heartbeats observed on long-deadline requests")
        self._latency = self.registry.histogram(
            "serve_request_seconds",
            "request wall-clock seconds by endpoint",
            labels=("endpoint",))
        for name in _RESPONSE_CLASSES:
            self._responses.labels(name)
        for name in _EXECUTOR_OUTCOMES:
            self._executor.labels(name)

    def hit(self, endpoint: str) -> None:
        self._requests.labels(endpoint).inc()

    def count_response(self, status: int) -> None:
        name = {200: "ok", 400: "bad_request", 404: "not_found",
                429: "shed", 503: "unavailable",
                504: "deadline_expired"}.get(status, "internal_error")
        self._responses.labels(name).inc()

    def count_executor(self, outcome: str) -> None:
        self._executor.labels(outcome).inc()

    def count_lease_renewal(self) -> None:
        self._lease_renewals.inc()

    def observe_latency(self, endpoint: str, seconds: float) -> None:
        self._latency.labels(endpoint).observe(seconds)

    def snapshot(self) -> Dict[str, Any]:
        by_endpoint = {}
        with self._requests._lock:
            children = list(self._requests._children.items())
        for key, child in children:
            by_endpoint[key[0]] = child._value
        return {
            "requests_total": self._requests.value,
            "by_endpoint": by_endpoint,
            "responses": {name: self._responses.value_of(name)
                          for name in _RESPONSE_CLASSES},
            "executor": {name: self._executor.value_of(name)
                         for name in _EXECUTOR_OUTCOMES},
        }


class _Job:
    """One admitted simulate request, shared between its connection
    thread (which owns the HTTP response) and an executor thread (which
    owns the result)."""

    def __init__(self, spec: PointSpec, deadline: float, deadline_s: float,
                 trace_id: Optional[str] = None):
        self.spec = spec
        self.key = spec.key()
        self.deadline = deadline          # absolute, time.monotonic()
        self.deadline_s = deadline_s
        self.done = threading.Event()
        self.stop = threading.Event()     # cancellation token (pool-aware)
        self.status = 500
        self.body: Dict[str, Any] = error_body(500, "never executed")
        #: End-to-end trace: the connection thread, the executor thread,
        #: and (via the result channel) a forked worker all append spans.
        #: A client-supplied ``obs_trace`` ID keeps one logical dispatch
        #: under one ID across grid → serve → worker hops.
        self.trace = Trace(trace_id)
        self.enqueued_wall = time.time()

    def finish(self, status: int, body: Dict[str, Any]) -> None:
        self.status = status
        self.body = body
        self.done.set()


class _Drained(Exception):
    """Inline simulation interrupted by drain (and checkpointed)."""

    def __init__(self, checkpoint: Optional[str]):
        self.checkpoint = checkpoint


class _Expired(Exception):
    """Inline simulation overran its deadline."""


class SimServer:
    """The service: HTTP front end, bounded queue, executor pool, drain."""

    def __init__(self, settings: Optional[ServeSettings] = None,
                 cache: Optional[ResultCache] = None,
                 telemetry: Optional[RunTelemetry] = None):
        self.settings = settings or ServeSettings()
        self.cache = cache
        self.telemetry = telemetry or RunTelemetry(stream=None, tag="serve")
        self.metrics = Metrics()
        self.queue: "queue.Queue[_Job]" = queue.Queue(
            maxsize=self.settings.queue_depth)
        self._jobs: List[_Job] = []            # live (admitted, not done)
        self._jobs_lock = threading.Lock()
        self._recent_traces: List[str] = []    # last completed trace IDs
        self._recent_lock = threading.Lock()
        self._in_flight = 0
        self._draining = False
        self._stopping = threading.Event()
        self._started = time.monotonic()
        self._workers: List[threading.Thread] = []
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._http_thread: Optional[threading.Thread] = None

    # --------------------------------------------------------------- lifecycle

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        if self._httpd is None:
            raise ServeError("server is not started")
        return self._httpd.server_address[1]

    @property
    def draining(self) -> bool:
        return self._draining

    def start(self) -> None:
        """Bind, start executor threads and the HTTP accept loop."""
        if self._httpd is not None:
            raise ServeError("server already started")
        if self.settings.checkpoint_dir is not None:
            Path(self.settings.checkpoint_dir).mkdir(parents=True,
                                                     exist_ok=True)
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer(
            (self.settings.host, self.settings.port), handler)
        self._httpd.daemon_threads = True
        self._started = time.monotonic()
        for i in range(max(1, self.settings.workers)):
            worker = threading.Thread(target=self._worker_loop,
                                      name=f"serve-exec-{i}", daemon=True)
            worker.start()
            self._workers.append(worker)
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever, kwargs={"poll_interval": _TICK},
            name="serve-http", daemon=True)
        self._http_thread.start()

    def drain(self, grace_s: Optional[float] = None) -> Dict[str, Any]:
        """Graceful shutdown: reject new work, let queued and in-flight
        simulations finish within the grace, checkpoint or cancel the
        rest, stop the listener, and report what happened.

        Idempotent; returns a summary dict (``clean`` means everything
        admitted was finished before the grace expired).
        """
        grace = (self.settings.drain_grace_s if grace_s is None else grace_s)
        self._draining = True
        deadline = time.monotonic() + grace
        while time.monotonic() < deadline:
            with self._jobs_lock:
                idle = not self._jobs
            if idle and self.queue.empty():
                break
            time.sleep(_TICK)
        with self._jobs_lock:
            leftover = list(self._jobs)
        clean = not leftover
        for job in leftover:
            # Cancels a running pool task (stop_event) or triggers the
            # inline checkpoint path; a still-queued job is answered 503
            # by the executor as soon as it is dequeued.
            job.stop.set()
        # Give cancellations a bounded moment to take effect so children
        # are reaped before the process exits.
        settle = time.monotonic() + max(1.0, 20 * _TICK)
        while time.monotonic() < settle:
            with self._jobs_lock:
                if not self._jobs:
                    break
            time.sleep(_TICK)
        self._stopping.set()
        for worker in self._workers:
            worker.join(timeout=1.0)
        if self._httpd is not None:
            self._httpd.shutdown()
            if self._http_thread is not None:
                self._http_thread.join(timeout=2.0)
            self._httpd.server_close()
            self._httpd = None
        # Flush: cache entries are already atomic on disk; what needs
        # persisting is the run's accounting.
        summary = {
            "clean": clean,
            "cancelled": len(leftover),
            "metrics": self.status_snapshot(),
        }
        return summary

    def run_until_signal(self, port_file: Optional[Path] = None) -> int:
        """Serve until SIGINT/SIGTERM, then drain; returns the exit code
        (0 for a completed drain).

        ``port_file`` (if given) receives the bound port as text once the
        listener is up — how an orchestrator launching ``--port 0``
        backends (the grid chaos harness, the scaling benchmark) learns
        where each one landed.
        """
        stop = threading.Event()
        self.start()
        if port_file is not None:
            Path(port_file).write_text(f"{self.port}\n", encoding="utf-8")
        with SignalDrain(on_signal=lambda signum: stop.set(),
                         reraise=False) as latch:
            while not stop.is_set():
                time.sleep(_TICK)
            latch.consume()
        self.drain()
        return 0

    # ---------------------------------------------------------------- status

    def readiness_body(self) -> Dict[str, Any]:
        """The ``/readyz`` load signals: admission queue depth, in-flight
        count, and the engines this build can run — enough for a
        dispatcher to rank backends without a full ``/metrics`` scrape."""
        from repro.core.engine import ENGINE_NAMES

        return {
            "draining": self._draining,
            "queue_depth": self.queue.qsize(),
            "queue_capacity": self.settings.queue_depth,
            "in_flight": self._in_flight,
            "engines": sorted(ENGINE_NAMES),
        }

    def status_snapshot(self) -> Dict[str, Any]:
        """The ``/metrics`` document."""
        snapshot = self.metrics.snapshot()
        snapshot.update({
            "service": "repro-serve",
            "version": PROTOCOL_VERSION,
            "uptime_s": round(time.monotonic() - self._started, 3),
            "draining": self._draining,
            "isolation": self.settings.effective_isolation(),
            "queue": {
                "capacity": self.settings.queue_depth,
                "depth": self.queue.qsize(),
                "in_flight": self._in_flight,
            },
            "farm": self.telemetry.summary(),
        })
        snapshot["cache"] = (self.cache.stats() if self.cache is not None
                             else None)
        snapshot["obs"] = merge_snapshots(self.metrics.registry.snapshot(),
                                          self.telemetry.registry.snapshot())
        with self._recent_lock:
            snapshot["recent_trace_ids"] = list(self._recent_traces)
        return snapshot

    def _note_trace(self, trace_id: str) -> None:
        # Deduplicated (a retried or hedged dispatch reuses one logical
        # trace ID — it moves to the end instead of flooding the window)
        # and bounded, so sustained load cannot grow this without limit.
        with self._recent_lock:
            try:
                self._recent_traces.remove(trace_id)
            except ValueError:
                pass
            self._recent_traces.append(trace_id)
            del self._recent_traces[:-RECENT_TRACES_MAX]

    def prometheus_body(self) -> str:
        """The ``/metrics?format=prometheus`` document: the merged
        service + telemetry registries plus the point-in-time load
        gauges a scraper cannot derive from counters."""
        gauges = Registry()
        gauges.gauge("serve_queue_depth",
                     "admitted requests waiting for an executor"
                     ).set(self.queue.qsize())
        gauges.gauge("serve_queue_capacity",
                     "admission queue bound (beyond it requests shed)"
                     ).set(self.settings.queue_depth)
        gauges.gauge("serve_in_flight",
                     "requests currently executing").set(self._in_flight)
        gauges.gauge("serve_draining",
                     "1 while a graceful drain is in progress"
                     ).set(1.0 if self._draining else 0.0)
        gauges.gauge("serve_uptime_seconds", "seconds since start").set(
            round(time.monotonic() - self._started, 3))
        if self.cache is not None:
            stats = self.cache.stats()
            gauges.gauge("serve_cache_entries",
                         "entries in the content-addressed result cache"
                         ).set(stats.get("entries", 0))
            gauges.gauge("serve_cache_bytes",
                         "bytes in the content-addressed result cache"
                         ).set(stats.get("bytes", 0))
        return render_prometheus(merge_snapshots(
            self.metrics.registry.snapshot(),
            self.telemetry.registry.snapshot(),
            gauges.snapshot()))

    # -------------------------------------------------------------- admission

    def admit(self, job: _Job) -> None:
        """Enqueue a job or shed it (raises :class:`ServeError` 429/503)."""
        if self._draining:
            raise ServeError("server is draining", status=503)
        # Register before enqueueing: the executor may pick the job up and
        # retire it before this thread runs again.
        with self._jobs_lock:
            self._jobs.append(job)
        try:
            self.queue.put_nowait(job)
        except queue.Full:
            self._retire(job)
            raise ServeError("queue full, try later", status=429) from None

    def _retire(self, job: _Job) -> None:
        with self._jobs_lock:
            if job in self._jobs:
                self._jobs.remove(job)

    # --------------------------------------------------------------- executor

    def _worker_loop(self) -> None:
        while True:
            try:
                job = self.queue.get(timeout=_TICK)
            except queue.Empty:
                if self._stopping.is_set():
                    return
                continue
            self._in_flight += 1
            try:
                self._execute(job)
            except Exception as exc:  # defence: a worker must never die
                self.metrics.count_executor("failed")
                job.finish(500, error_body(
                    500, f"{type(exc).__name__}: {exc}"))
            finally:
                self._in_flight -= 1
                self._retire(job)
                self.queue.task_done()

    def _execute(self, job: _Job) -> None:
        now = time.monotonic()
        job.trace.add_span("queue_wait", job.enqueued_wall, time.time(),
                           cat="serve")
        if job.stop.is_set():
            self.metrics.count_executor("cancelled")
            job.finish(503, error_body(503, "dropped while queued (drain)"))
            return
        if now >= job.deadline:
            self.metrics.count_executor("expired_in_queue")
            job.finish(504, error_body(
                504, f"deadline of {job.deadline_s:g}s expired in queue"))
            return
        if self.cache is not None:
            with span("cache_probe", cat="serve", trace=job.trace):
                hit = self.cache.get(job.key)
            if hit is not None:
                self.metrics.count_executor("cache_hits")
                self.telemetry.record_point(job.spec.label,
                                            hit.instructions, 0.0,
                                            cached=True)
                job.finish(200, render_result(job.spec, hit, job.key,
                                              cached=True, wall_s=0.0))
                return
        remaining = job.deadline - now
        started = time.monotonic()
        started_wall = time.time()
        try:
            if self.settings.effective_isolation() == "fork":
                stats, wall_s = self._execute_forked(job, remaining)
            else:
                stats, wall_s = self._execute_inline(job)
        except FarmCancelled:
            self.metrics.count_executor("cancelled")
            job.finish(503, error_body(503, "cancelled (drain or "
                                            "abandoned deadline)"))
            return
        except _Drained as drained:
            if drained.checkpoint:
                self.metrics.count_executor("checkpointed")
                body = error_body(503, "draining; simulation checkpointed",
                                  checkpoint=drained.checkpoint)
            else:
                self.metrics.count_executor("cancelled")
                body = error_body(503, "draining; simulation cancelled")
            job.finish(503, body)
            return
        except _Expired:
            self.metrics.count_executor("failed")
            job.finish(504, error_body(
                504, f"deadline of {job.deadline_s:g}s expired "
                     "mid-simulation"))
            return
        except FarmError as exc:
            self.metrics.count_executor("failed")
            # The pool's timeout is this request's deadline; report it as
            # such rather than as a server fault.
            if "timed out" in str(exc):
                job.finish(504, error_body(
                    504, f"deadline of {job.deadline_s:g}s expired "
                         "mid-simulation"))
            else:
                job.finish(500, error_body(500, f"simulation failed: {exc}"))
            return
        except (ConfigurationError, ReproError) as exc:
            self.metrics.count_executor("failed")
            job.finish(500, error_body(500, f"simulation failed: {exc}"))
            return
        self.metrics.count_executor("simulated")
        job.trace.add_span("execute", started_wall, time.time(), cat="serve",
                           isolation=self.settings.effective_isolation())
        self.telemetry.record_point(job.spec.label, stats.instructions,
                                    wall_s, cached=False)
        if self.cache is not None:
            self.cache.put(job.key, stats, meta={
                "label": job.spec.label,
                "config": job.spec.config.name,
                "instructions": stats.instructions,
                "wall_s": round(wall_s, 3),
                "created_unix": int(time.time()),
                "source": "repro-serve",
            })
        job.finish(200, render_result(job.spec, stats, job.key,
                                      cached=False,
                                      wall_s=time.monotonic() - started))

    def _execute_forked(self, job: _Job, remaining: float):
        """One simulation in a forked pool worker: the pool's timeout
        machinery enforces the deadline with a real kill, and crash
        retries come for free."""
        # The trace ID rides in a copy of the payload — ``execute_point``
        # treats it as out-of-band, and the cache key comes from
        # ``spec.key()`` over the pristine payload, so caching is unaffected.
        payload = dict(job.spec.payload())
        payload["obs_trace"] = job.trace.trace_id
        # Long-deadline requests get worker-side lease renewal: the child
        # heartbeats over the result pipe, and a beat-less lease expiry
        # kills the stuck worker *now* instead of burning the rest of the
        # request deadline on a process that will never answer.
        lease = None
        heartbeat = None
        on_heartbeat = None
        if remaining > self.settings.worker_lease_s:
            lease = self.settings.worker_lease_s
            heartbeat = self.settings.worker_heartbeat_s

            def on_heartbeat(_index: int) -> None:
                self.metrics.count_lease_renewal()
        value = run_tasks(execute_point, [payload],
                          jobs=2,  # parallel path: one child, killable
                          timeout=remaining,
                          retries=self.settings.retries,
                          labels=[job.spec.label],
                          stop_event=job.stop,
                          heartbeat_s=heartbeat,
                          lease_s=lease,
                          on_heartbeat=on_heartbeat)[0]
        for record in value.get("trace_spans", ()):
            job.trace.add_record(record)
        if value.get("obs"):
            self.telemetry.registry.merge(value["obs"])
        return SimStats.from_dict(value["stats"]), value["wall_s"]

    def _execute_inline(self, job: _Job):
        """One simulation on this thread: cooperative deadline checks at
        slice granularity, and a drain checkpoints the run instead of
        discarding it."""
        from repro.core.simulator import Simulation

        spec = job.spec
        sim = Simulation(config=spec.config, profiles=list(spec.profiles),
                         time_slice=spec.time_slice, level=spec.level,
                         warmup_instructions=spec.warmup_instructions,
                         engine=spec.engine, energy=spec.energy)

        def on_slice(scheduler) -> None:
            # Deadline first: a handler that already answered 504 sets
            # ``stop`` too, and that abandonment must not masquerade as a
            # drain checkpoint.
            if time.monotonic() >= job.deadline:
                raise _Expired()
            if job.stop.is_set():
                checkpoint: Optional[str] = None
                if self._draining and self.settings.checkpoint_dir:
                    from repro.robust.checkpoint import save_checkpoint

                    path = (Path(self.settings.checkpoint_dir)
                            / f"{job.key}.ckpt")
                    save_checkpoint(sim, path)
                    checkpoint = str(path)
                raise _Drained(checkpoint)

        started = time.monotonic()
        with span("simulate", cat="sim", trace=job.trace):
            stats = sim.scheduler.run(
                max_instructions=spec.max_instructions,
                warmup_instructions=spec.warmup_instructions,
                on_slice=on_slice)
        return stats, time.monotonic() - started


# ------------------------------------------------------------- HTTP front end


def _make_handler(server: SimServer):
    """A request-handler class bound to one :class:`SimServer`."""

    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-serve/1"

        # ------------------------------------------------------------- plumbing

        def log_message(self, format, *args):  # noqa: A002 - stdlib name
            pass  # the service narrates via /metrics, not stderr

        def _respond(self, status: int, body: Dict[str, Any],
                     headers: Optional[Dict[str, str]] = None) -> None:
            blob = (json.dumps(body) + "\n").encode("utf-8")
            self._respond_bytes(status, blob, "application/json", headers)

        def _respond_bytes(self, status: int, blob: bytes,
                           content_type: str,
                           headers: Optional[Dict[str, str]] = None) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(blob)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            try:
                self.wfile.write(blob)
            except (BrokenPipeError, ConnectionResetError):
                pass  # client went away; nothing left to tell it

        def _wants_prometheus(self, query: str) -> bool:
            """Explicit ``?format=`` wins; otherwise an ``Accept`` header
            that asks for ``text/plain`` (a Prometheus scraper's
            preference) and not JSON selects exposition format."""
            params = urllib.parse.parse_qs(query)
            fmt = params.get("format", [""])[-1].lower()
            if fmt == "prometheus":
                return True
            if fmt:          # explicit json (or anything else): legacy
                return False
            accept = self.headers.get("Accept", "")
            return ("text/plain" in accept
                    and "application/json" not in accept)

        # ------------------------------------------------------------ GET side

        def do_GET(self) -> None:  # noqa: N802 - stdlib API
            try:
                path, _, query = self.path.partition("?")
                if path == "/healthz":
                    server.metrics.hit("healthz")
                    self._respond(200, {
                        "ok": True,
                        "uptime_s": round(
                            time.monotonic() - server._started, 3),
                    })
                elif path == "/readyz":
                    server.metrics.hit("readyz")
                    # The status code is the contract (200 accepting,
                    # 503 draining); the body carries the load signals a
                    # dispatcher needs for placement.
                    body = server.readiness_body()
                    if server.draining:
                        self._respond(503, error_body(503, "draining",
                                                      **body))
                    else:
                        self._respond(200, {"ready": True, **body})
                elif path == "/metrics":
                    server.metrics.hit("metrics")
                    if self._wants_prometheus(query):
                        self._respond_bytes(
                            200, server.prometheus_body().encode("utf-8"),
                            PROMETHEUS_CONTENT_TYPE)
                    else:
                        # The legacy JSON document, shape untouched.
                        self._respond(200, server.status_snapshot())
                else:
                    server.metrics.hit("other")
                    self._respond(404, error_body(404, "unknown path"))
            except Exception as exc:  # never a traceback on the wire
                self._respond(500, error_body(
                    500, f"{type(exc).__name__}: {exc}"))

        # ----------------------------------------------------------- POST side

        def do_POST(self) -> None:  # noqa: N802 - stdlib API
            if self.path != "/v1/simulate":
                server.metrics.hit("other")
                self._respond(404, error_body(404, "unknown path"))
                return
            server.metrics.hit("simulate")
            started = time.monotonic()
            try:
                status, body, headers = self._simulate()
            except Exception as exc:  # never a traceback on the wire
                status, body, headers = 500, error_body(
                    500, f"{type(exc).__name__}: {exc}"), None
            server.metrics.count_response(status)
            server.metrics.observe_latency("simulate",
                                           time.monotonic() - started)
            self._respond(status, body, headers)

        def _simulate(self):
            settings = server.settings
            try:
                length = int(self.headers.get("Content-Length", ""))
            except ValueError:
                return 400, error_body(400, "Content-Length required"), None
            raw = self.rfile.read(max(0, length))
            try:
                spec, deadline_s, obs_trace = parse_simulate_request(
                    raw, settings.max_body_bytes)
            except (ServeError, ConfigurationError) as exc:
                return 400, error_body(400, str(exc)), None
            if deadline_s is None:
                deadline_s = settings.default_deadline_s
            deadline_s = min(deadline_s, settings.max_deadline_s)
            job = _Job(spec, time.monotonic() + deadline_s, deadline_s,
                       trace_id=obs_trace)

            def with_trace(status: int, body: Dict[str, Any]
                           ) -> Dict[str, Any]:
                # Close the end-to-end span and surface the whole trace in
                # the response, whatever the outcome — the ID is the
                # client's handle for correlating with the server's logs.
                job.trace.add_span("request", job.enqueued_wall, time.time(),
                                   cat="serve", status=status)
                server._note_trace(job.trace.trace_id)
                body = dict(body)
                body["trace"] = job.trace.to_dict()
                return body

            try:
                server.admit(job)
            except ServeError as exc:
                if exc.status == 429:
                    retry_after = max(1, int(settings.retry_after_s + 0.5))
                    return 429, with_trace(429, error_body(
                        429, str(exc), retry_after_s=settings.retry_after_s
                    )), {"Retry-After": str(retry_after)}
                return exc.status, with_trace(
                    exc.status, error_body(exc.status, str(exc))), None
            finished = job.done.wait(timeout=(job.deadline
                                              - time.monotonic()) + 2 * _TICK)
            if not finished:
                # The connection answers 504 now; the stop event tells the
                # executor (and its forked child) to abandon the work.
                job.stop.set()
                return 504, with_trace(504, error_body(
                    504, f"deadline of {deadline_s:g}s expired")), None
            return job.status, with_trace(job.status, job.body), None

    return Handler
