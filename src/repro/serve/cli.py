"""``repro-serve``: run, query, and torture the simulation service.

Usage::

    repro-serve start --port 8023 --queue-depth 8 --workers 2
    repro-serve simulate --url http://127.0.0.1:8023 \\
        --config machine.json --instructions 200000 --level 4
    repro-serve metrics --url http://127.0.0.1:8023
    repro-serve chaos --duration 6

``start`` serves until SIGINT/SIGTERM and then drains gracefully (stop
accepting, finish or checkpoint in-flight simulations, exit 0).
``simulate`` is the retrying client: it backs off with jitter on 429/503,
honors ``Retry-After``, and fails fast once its circuit breaker opens.
``chaos`` runs the self-contained fault storm and exits non-zero if any
robustness guarantee was violated — CI's smoke test.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.core.engine import DEFAULT_ENGINE, ENGINE_NAMES
from repro.errors import ServeError, cli_errors
from repro.farm.cache import ResultCache


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Fault-tolerant simulation service for config→CPI "
                    "queries, backed by the farm's result cache.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    start = sub.add_parser("start", help="run the service until signalled")
    start.add_argument("--host", default="127.0.0.1")
    start.add_argument("--port", type=int, default=8023)
    start.add_argument("--queue-depth", type=int, default=8,
                       help="bounded admission queue; beyond it requests "
                            "are shed with 429 (default %(default)s)")
    start.add_argument("--workers", type=int, default=2,
                       help="executor threads (default %(default)s)")
    start.add_argument("--deadline", type=float, default=30.0,
                       help="default per-request deadline, seconds")
    start.add_argument("--max-deadline", type=float, default=120.0,
                       help="ceiling on client-requested deadlines")
    start.add_argument("--drain-grace", type=float, default=10.0,
                       help="seconds a drain lets in-flight work finish")
    start.add_argument("--isolation", choices=["auto", "fork", "inline"],
                       default="auto",
                       help="simulation isolation (default %(default)s)")
    start.add_argument("--checkpoint-dir", type=Path, default=None,
                       help="spool for drain checkpoints (inline mode)")
    start.add_argument("--cache-dir", type=Path, default=None,
                       help="result cache root (default: $REPRO_FARM_CACHE "
                            "or ~/.cache/repro-farm)")
    start.add_argument("--no-cache", action="store_true",
                       help="serve without the result cache")
    start.add_argument("--port-file", type=Path, default=None,
                       help="write the bound port here once listening "
                            "(lets an orchestrator use --port 0)")

    simulate = sub.add_parser("simulate",
                              help="run one point through a server")
    simulate.add_argument("--url", default="http://127.0.0.1:8023")
    simulate.add_argument("--config", type=Path, required=True,
                          help="SystemConfig JSON file")
    simulate.add_argument("--instructions", type=int, default=120000,
                          help="instructions per benchmark")
    simulate.add_argument("--level", type=int, default=2,
                          help="multiprogramming level")
    simulate.add_argument("--time-slice", type=int, default=30000)
    simulate.add_argument("--engine", choices=list(ENGINE_NAMES),
                          default=DEFAULT_ENGINE,
                          help="simulation engine executing the point")
    simulate.add_argument("--deadline", type=float, default=None,
                          help="per-request deadline, seconds")
    simulate.add_argument("--budget", type=float, default=60.0,
                          help="total client budget across retries")
    simulate.add_argument("--json", action="store_true",
                          help="print the raw response JSON")

    metrics = sub.add_parser("metrics", help="print a /metrics snapshot")
    metrics.add_argument("--url", default="http://127.0.0.1:8023")

    chaos = sub.add_parser("chaos",
                           help="run the chaos storm; exit 1 on violation")
    chaos.add_argument("--duration", type=float, default=6.0)
    chaos.add_argument("--clients", type=int, default=4)
    chaos.add_argument("--crash-p", type=float, default=0.25,
                       help="per-attempt worker crash probability")
    chaos.add_argument("--stall-p", type=float, default=0.35,
                       help="per-attempt worker stall probability")
    chaos.add_argument("--queue-depth", type=int, default=2)
    chaos.add_argument("--isolation", choices=["auto", "fork", "inline"],
                       default="auto")
    chaos.add_argument("--seed", type=int, default=0)
    return parser


def _cmd_start(args) -> int:
    from repro.serve.server import ServeSettings, SimServer

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    settings = ServeSettings(
        host=args.host, port=args.port, queue_depth=args.queue_depth,
        workers=args.workers, default_deadline_s=args.deadline,
        max_deadline_s=args.max_deadline, drain_grace_s=args.drain_grace,
        isolation=args.isolation, checkpoint_dir=args.checkpoint_dir)
    server = SimServer(settings, cache=cache)
    code = server.run_until_signal(port_file=args.port_file)
    summary = server.telemetry.format_summary()
    print(f"[serve] drained; {summary}", file=sys.stderr)
    return code


def _cmd_simulate(args) -> int:
    from repro.serve.client import ServeClient

    try:
        config = json.loads(args.config.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ServeError(f"cannot read config {args.config}: {exc}")
    request = {
        "config": config,
        "workload": {"suite": {
            "instructions_per_benchmark": args.instructions,
            "level": args.level,
        }},
        "time_slice": args.time_slice,
        "level": args.level,
        "engine": args.engine,
    }
    if args.deadline is not None:
        request["deadline_s"] = args.deadline
    client = ServeClient(args.url)
    result = client.simulate(request, budget_s=args.budget)
    if args.json:
        print(json.dumps(result, indent=1))
        return 0
    stats = result["stats"]
    print(f"key      : {result['key'][:16]}…")
    print(f"cached   : {result['cached']}")
    print(f"CPI      : {result['cpi']:.4f}")
    print(f"instr    : {stats['instructions']:,}")
    print(f"wall     : {result['wall_s']:.3f}s")
    return 0


def _cmd_metrics(args) -> int:
    from repro.serve.client import ServeClient

    print(json.dumps(ServeClient(args.url).metrics(), indent=1))
    return 0


def _cmd_chaos(args) -> int:
    from repro.serve.chaos import ChaosSettings, run_chaos

    settings = ChaosSettings(
        duration_s=args.duration, clients=args.clients,
        worker_crash_p=args.crash_p, worker_stall_p=args.stall_p,
        queue_depth=args.queue_depth, isolation=args.isolation,
        seed=args.seed)
    report = run_chaos(settings, stream=sys.stdout)
    return 0 if report.passed else 1


@cli_errors
def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "start":
        return _cmd_start(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "metrics":
        return _cmd_metrics(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
