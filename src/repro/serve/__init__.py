"""repro.serve: a fault-tolerant simulation service.

The cache-exploration workflows this reproduction supports are
interactive: many small configuration→CPI queries over a shared result
cache.  ``repro.serve`` turns the batch farm into that service:

* :mod:`repro.serve.server` — threaded HTTP server with a bounded
  admission queue (429 + ``Retry-After`` load shedding), per-request
  deadlines (504, enforced by the farm pool's kill machinery), health/
  readiness/metrics endpoints, and graceful SIGTERM/SIGINT drain that
  finishes or checkpoints in-flight simulations and exits 0;
* :mod:`repro.serve.client` — a client with exponential-backoff +
  full-jitter retries honoring ``Retry-After``, a total deadline budget,
  and a half-opening circuit breaker;
* :mod:`repro.serve.protocol` — the validated request/response wire
  format (a bad request is a 400 with a message, never a traceback);
* :mod:`repro.serve.chaos` — the harness that proves all of the above
  under injected cache corruption, worker crashes, and worker stalls;
* :mod:`repro.serve.cli` — the ``repro-serve`` command.

Quickstart::

    repro-serve start --port 8023 &
    repro-serve simulate --config machine.json --instructions 200000
    kill -TERM %1      # graceful drain, exit 0
"""

from repro.serve.client import (
    BreakerPool,
    CircuitBreaker,
    RetryPolicy,
    ServeClient,
)
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    parse_simulate_request,
    render_result,
    stats_digest,
)
from repro.serve.server import Metrics, ServeSettings, SimServer

__all__ = [
    "BreakerPool",
    "CircuitBreaker",
    "Metrics",
    "PROTOCOL_VERSION",
    "RetryPolicy",
    "ServeClient",
    "ServeSettings",
    "SimServer",
    "parse_simulate_request",
    "render_result",
    "stats_digest",
]
